"""Node failure and recovery tests (Fig. 8b's machinery)."""

import numpy as np
import pytest

from repro.cluster import BlockId, ClusterConfig, ECFS, RecoveryManager
from repro.traces import TraceReplayer, generate_trace, tencloud_spec


def _cluster(method, **kw):
    defaults = dict(
        n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17, seed=21
    )
    defaults.update(kw)
    return ECFS(ClusterConfig(**defaults), method=method)


def _updates_then_fail(ecfs, n_ops=120, fail_osd=0):
    files = ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    fsize = ecfs.mds.lookup(files[0]).size
    trace = generate_trace(tencloud_spec(), n_ops, files, fsize, seed=3)
    TraceReplayer(ecfs, trace).run(n_clients=4)
    manager = RecoveryManager(ecfs)
    report = ecfs.env.run(
        ecfs.env.process(manager.fail_and_recover(fail_osd), name="rec")
    )
    return files, manager, report


@pytest.mark.parametrize("method", ["fo", "pl", "parix", "tsue"])
def test_recovered_blocks_are_byte_correct(method):
    ecfs = _cluster(method)
    _files, manager, report = _updates_then_fail(ecfs)
    assert report.blocks_rebuilt == len(
        [b for b in ecfs.known_blocks if ecfs.placement.osd_of(b) == 0]
    )
    # every rebuilt block must match the oracle / re-encode
    ecfs.drain()
    for block, new_home in ecfs.placement.remapped.items():
        osd = ecfs.osds[new_home]
        got = osd.store.view(block)
        if block.idx < ecfs.rs.k:
            assert np.array_equal(got, ecfs.oracle.expected(block))


def test_recovery_after_drain_verifies_cluster():
    ecfs = _cluster("tsue")
    _updates_then_fail(ecfs)
    ecfs.drain()
    # verify every stripe (reads follow the placement override)
    assert ecfs.verify() == 4


def test_fo_recovery_has_no_prepare_cost():
    ecfs = _cluster("fo")
    _files, _m, report = _updates_then_fail(ecfs)
    assert report.prepare_seconds == 0.0
    assert report.bandwidth > 0


def test_pl_recovery_pays_log_settlement():
    """PL must merge parity logs before rebuild: prepare time > 0."""
    ecfs = _cluster("pl")
    _files, _m, report = _updates_then_fail(ecfs)
    assert report.prepare_seconds > 0


def test_tsue_prepare_cheaper_than_pl():
    """Real-time recycling means TSUE enters recovery with ~no log debt."""
    pl = _cluster("pl", seed=22)
    _f, _m, pl_report = _updates_then_fail(pl)
    tsue = _cluster("tsue", seed=22)
    _f, _m, tsue_report = _updates_then_fail(tsue)
    assert tsue_report.prepare_seconds < pl_report.prepare_seconds


def test_recovery_bandwidth_definition():
    ecfs = _cluster("fo")
    _files, _m, report = _updates_then_fail(ecfs)
    expected = report.bytes_rebuilt / (
        report.prepare_seconds + report.rebuild_seconds
    )
    assert report.bandwidth == pytest.approx(expected)


def test_failed_node_not_used_as_source():
    ecfs = _cluster("fo")
    manager = RecoveryManager(ecfs)
    ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    report = ecfs.env.run(ecfs.env.process(manager.fail_and_recover(3)))
    assert ecfs.osds[3].failed
    for block in ecfs.placement.remapped.values():
        assert block != 3


def test_two_failures_within_tolerance_recoverable():
    ecfs = _cluster("fo", n_osds=12)
    ecfs.populate(n_files=1, stripes_per_file=3, fill="random")
    manager = RecoveryManager(ecfs)
    env = ecfs.env
    env.run(env.process(manager.fail_and_recover(0)))
    env.run(env.process(manager.fail_and_recover(1)))
    assert ecfs.verify() == 3


def test_lost_blocks_enumeration():
    ecfs = _cluster("fo")
    ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    manager = RecoveryManager(ecfs)
    lost = manager.lost_blocks(0)
    assert all(ecfs.placement.osd_of(b) == 0 for b in lost)
    total = sum(len(manager.lost_blocks(i)) for i in range(10))
    assert total == len(ecfs.known_blocks)
