"""Tests for the real-trace CSV loaders."""

import io

import pytest

from repro.traces import (
    load_alibaba_csv,
    load_msr_csv,
    load_tencent_csv,
    load_trace,
)

_MB = 1 << 20


def test_msr_format_parses():
    csv_text = (
        "128166372003061629,hm,0,Read,383496192,32768,1331\n"
        "128166372016382155,hm,0,Write,2822144,4096,573\n"
        "128166372026382245,hm,1,Write,2822144,65536,921\n"
    )
    recs = load_msr_csv(io.StringIO(csv_text), [1, 2], 16 * _MB)
    assert len(recs) == 3
    assert recs[0].op == "read"
    assert recs[1].op == "update"
    assert recs[1].size == 4096
    assert recs[2].size == 65536
    # hm.0 and hm.1 are distinct volumes -> different files
    assert recs[1].file_id != recs[2].file_id


def test_msr_skips_header():
    csv_text = "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
    assert load_msr_csv(io.StringIO(csv_text), [1], _MB) == []


def test_alibaba_format_parses():
    csv_text = "0,R,126703644672,4096,1577808000000594\n0,W,8613392384,16384,1577808000001661\n"
    recs = load_alibaba_csv(io.StringIO(csv_text), [5], 8 * _MB)
    assert [r.op for r in recs] == ["read", "update"]
    assert recs[1].size == 16384
    assert all(r.file_id == 5 for r in recs)


def test_tencent_format_sector_units():
    csv_text = "1538323200,680259,8,1,1283\n1538323200,2160864,32,0,1283\n"
    recs = load_tencent_csv(io.StringIO(csv_text), [1], 4 * _MB)
    assert recs[0].op == "update"
    assert recs[0].size == 8 * 512  # sectors -> bytes
    assert recs[1].op == "read"
    assert recs[1].size == 32 * 512


def test_offsets_wrap_and_align():
    csv_text = "1,hm,0,Write,999999999999,4096,1\n"
    (rec,) = load_msr_csv(io.StringIO(csv_text), [1], 2 * _MB)
    assert rec.offset % 4096 == 0
    assert rec.offset + rec.size <= 2 * _MB


def test_tiny_requests_rounded_to_page():
    csv_text = "1,hm,0,Write,0,100,1\n"
    (rec,) = load_msr_csv(io.StringIO(csv_text), [1], _MB)
    assert rec.size == 4096


def test_max_records_cap():
    csv_text = "".join(f"{i},hm,0,Write,{i*4096},4096,1\n" for i in range(100))
    recs = load_msr_csv(io.StringIO(csv_text), [1], 16 * _MB, max_records=10)
    assert len(recs) == 10


def test_volume_round_robin_mapping():
    csv_text = "".join(f"1,host,{d},Write,0,4096,1\n" for d in range(4))
    recs = load_msr_csv(io.StringIO(csv_text), [7, 8], 16 * _MB)
    assert {r.file_id for r in recs} == {7, 8}


def test_dispatch():
    csv_text = "1,hm,0,Write,0,4096,1\n"
    recs = load_trace("msr", io.StringIO(csv_text), [1], _MB)
    assert len(recs) == 1
    with pytest.raises(KeyError):
        load_trace("bogus", io.StringIO(""), [1], _MB)


def test_loaded_trace_replays(tmp_path):
    """End-to-end: a loaded CSV replays against a cluster and verifies."""
    from repro.cluster import ClusterConfig, ECFS
    from repro.traces import TraceReplayer

    path = tmp_path / "trace.csv"
    path.write_text(
        "".join(
            f"{i},hm,0,{'Write' if i % 3 else 'Read'},{(i * 37) % 900000},4096,1\n"
            for i in range(60)
        )
    )
    ecfs = ECFS(
        ClusterConfig(n_osds=10, k=4, m=2, block_size=1 << 16, seed=55),
        method="tsue",
    )
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    recs = load_msr_csv(path, files, ecfs.mds.lookup(files[0]).size)
    result = TraceReplayer(ecfs, recs).run(n_clients=4)
    assert result.ops_issued == 60
    ecfs.drain()
    assert ecfs.verify() == 2
