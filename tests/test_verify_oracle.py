"""Tests for the ground-truth integrity oracle itself."""

import numpy as np
import pytest

from repro.cluster import BlockId, ClusterConfig, ECFS, GroundTruth
from repro.common.errors import IntegrityError


def _cluster():
    return ECFS(
        ClusterConfig(n_osds=10, k=4, m=2, block_size=1 << 14, seed=41),
        method="fo",
    )


def test_oracle_apply_and_expected():
    gt = GroundTruth(1024)
    data = np.arange(100, dtype=np.uint8)
    gt.apply(BlockId(1, 0, 0), 10, data)
    out = gt.expected(BlockId(1, 0, 0))
    assert np.array_equal(out[10:110], data)
    assert (out[:10] == 0).all()
    assert gt.applied_updates == 1


def test_oracle_bounds():
    gt = GroundTruth(64)
    with pytest.raises(IntegrityError):
        gt.apply(BlockId(1, 0, 0), 60, np.ones(10, dtype=np.uint8))


def test_oracle_detects_corrupted_data_block():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    bid = BlockId(files[0], 0, 0)
    osd = ecfs.osd_hosting(bid)
    osd.store.write(bid, 0, np.zeros(16, dtype=np.uint8))  # corrupt silently
    with pytest.raises(IntegrityError, match="diverges"):
        ecfs.verify()


def test_oracle_detects_stale_parity():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    pbid = BlockId(files[0], 0, 4)  # first parity block
    osd = ecfs.osd_hosting(pbid)
    osd.store.xor_in(pbid, 0, np.full(16, 0xFF, dtype=np.uint8))
    with pytest.raises(IntegrityError, match="parity"):
        ecfs.verify()


def test_oracle_stripe_enumeration():
    gt = GroundTruth(64)
    gt.apply(BlockId(1, 0, 0), 0, np.ones(4, dtype=np.uint8))
    gt.apply(BlockId(1, 2, 1), 0, np.ones(4, dtype=np.uint8))
    gt.apply(BlockId(2, 0, 3), 0, np.ones(4, dtype=np.uint8))
    assert gt.stripes() == {(1, 0), (1, 2), (2, 0)}


def test_verify_subset_of_stripes():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=3, fill="random")
    checked = ecfs.oracle.verify_cluster(ecfs, ecfs.rs, stripes=[(files[0], 1)])
    assert checked == 1
