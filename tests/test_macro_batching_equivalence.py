"""Macro-op batching equivalence tier: batched == per-leg oracle, always.

The batching layer (:mod:`repro.sim.batch`) replaces the per-shard
process-per-leg fan-out idiom with one latch + flat event chains.  Its
correctness contract is *strict timing equivalence*: with
``macro_batching`` on or off, every simulation in this tree must produce
byte-identical canonical digests — same sim clock, same op counts, same
latency sums, same device counters, same network totals, same block bytes.
The per-leg path stays in the tree as the equivalence oracle; these tests
pin the two paths together so they can never drift.

What batching *is* allowed to change is the heap-event count (that is the
point: fewer scaffolding events for the same simulated work), so event
counts are asserted per-mode stable, not cross-mode equal — and the
batched count must never exceed the legacy count.

Covered here:

* all seven update methods, batched vs legacy digests + double-run
  stability (fast tier);
* a fault-scenario sample across the topo-*/bg-*/slo-* families, where
  fan-outs interleave with crashes, rebalance, and QoS scheduling;
* PYTHONHASHSEED-varied subprocesses: batched-mode digests must not
  lean on dict/set iteration order any more than legacy ones do;
* the dispatcher deadline-abandon accounting fix that batching work
  surfaced: a straggler read leg that outlives several deadline wakes
  must be cancelled (and counted) exactly once.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.fault.digest import cluster_digest
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.harness.runner import ExperimentConfig, run_experiment

METHODS = ["fo", "fl", "pl", "plr", "parix", "tsue", "cord"]

#: one scenario per family: elastic topology (rebalance fan-outs under a
#: mid-migration crash), background maintenance (scrub vs foreground), and
#: the QoS front end (hedged reads + deadline abandonment over batched legs)
SCENARIO_SAMPLE = ["topo-join-crush", "bg-scrub-under-load", "slo-qos-crash"]


def _cfg(method: str, batched: bool) -> ExperimentConfig:
    return ExperimentConfig(
        method=method,
        trace="tencloud",
        k=4,
        m=2,
        n_osds=10,
        n_clients=4,
        n_ops=150,
        block_size=1 << 16,
        log_unit_size=1 << 17,
        n_files=2,
        stripes_per_file=2,
        seed=4242,
        verify=True,
        macro_batching=batched,
    )


def _run(method: str, batched: bool):
    result = run_experiment(_cfg(method, batched), keep_cluster=True)
    return cluster_digest(result.ecfs), result.perf["events"]


@pytest.mark.parametrize("method", METHODS)
def test_batched_matches_legacy_digest(method):
    """The core contract: batched and per-leg runs are byte-identical in
    every digested observable, and each mode reproduces itself exactly."""
    batched_digest, batched_events = _run(method, True)
    legacy_digest, legacy_events = _run(method, False)
    assert batched_digest == legacy_digest, (
        f"{method}: macro-batched digest diverged from the per-leg oracle"
    )
    # double-run: per-mode event counts are deterministic
    assert _run(method, True) == (batched_digest, batched_events)
    assert _run(method, False) == (legacy_digest, legacy_events)
    # batching may only ever REMOVE scaffolding events
    assert batched_events <= legacy_events, (
        f"{method}: batched run scheduled more events "
        f"({batched_events:.0f}) than legacy ({legacy_events:.0f})"
    )


@pytest.mark.parametrize("name", SCENARIO_SAMPLE)
def test_scenario_batched_matches_legacy(name):
    """Fault scenarios — crashes, rebalance, QoS deadlines landing between
    fan-out legs — agree between the batched and per-leg paths."""

    def run(batched: bool):
        spec = dataclasses.replace(get_scenario(name), macro_batching=batched)
        result = ScenarioRunner(spec).run(seed=7)
        return (
            result.digest,
            result.sim_time,
            result.ops,
            result.failures,
            result.slo,
            result.background,
        )

    batched, legacy = run(True), run(False)
    assert batched[0] == legacy[0], f"{name}: digest diverged"
    assert batched[1:] == legacy[1:], f"{name}: scenario read-outs diverged"


_HASHSEED_SNIPPET = """
import dataclasses
from repro.fault.digest import cluster_digest
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.harness.runner import ExperimentConfig, run_experiment
for batched in (True, False):
    cfg = ExperimentConfig(
        method="tsue", trace="tencloud", k=4, m=2, n_osds=10, n_clients=4,
        n_ops=150, block_size=1 << 16, log_unit_size=1 << 17, n_files=2,
        stripes_per_file=2, seed=4242, verify=True, macro_batching=batched,
    )
    print(batched, cluster_digest(run_experiment(cfg, keep_cluster=True).ecfs))
spec = dataclasses.replace(get_scenario("slo-qos-crash"), macro_batching=True)
print(ScenarioRunner(spec).run(seed=7).digest)
"""


def test_batched_digest_stable_across_hashseeds():
    """Batched-mode digests must not depend on PYTHONHASHSEED: two fresh
    interpreters with different hash seeds agree byte-for-byte (the latch /
    chain machinery keeps no set- or dict-ordered state on timing paths)."""
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def run(hashseed: str) -> str:
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    assert run("1") == run("424242")


def test_deadline_abandon_counts_each_leg_once():
    """Regression: a read leg that stays alive across several deadline
    wake-ups (its cancel interrupt takes a queue hop to drain) used to be
    re-cancelled and re-counted on every wake.  The abandon path now
    remembers already-cancelled legs, so ``cancelled_legs`` counts each leg
    at most once per attempt — bounded by the legs the attempt spawned."""
    spec = get_scenario("slo-qos-crash")
    result = ScenarioRunner(spec).run(seed=7)
    stats = result.frontend_stats
    deadline_exp = stats.get("deadline_expired", 0)
    # each expired deadline abandons one attempt: at most primary + hedge
    # legs are cancelled per attempt, never more (the double-count bug
    # inflated this linearly with straggler lifetime)
    assert stats.get("cancelled_legs", 0) <= 2 * deadline_exp, stats
