"""Property test: the optimized engine preserves seed-engine semantics.

A reference engine — a verbatim-style reimplementation of the seed's simple
heap loop (tuple heap, per-event ``step()``, no inline fast paths, no
cancellation) — runs the same randomized process programs as the optimized
engine.  For the core primitives (timeouts, events, processes, AllOf/AnyOf)
the two must produce identical traces: same (time, tag) sequence, same
final clock.

A second property extends the determinism regression to the sweep layer:
randomized experiment cells replayed twice (and through the parallel
executor) produce the same canonical digest.
"""

import heapq
import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PHASE_LATE, PHASE_NORMAL, PHASE_URGENT, Environment


# --------------------------------------------------------- reference engine
# The seed engine, stripped to the primitives the property exercises.


class _RefEvent:
    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self.value = None
        self.ok = True
        self.state = 0  # 0 pending, 1 triggered, 2 processed

    def succeed(self, value=None):
        assert self.state == 0
        self.ok = True
        self.value = value
        self.state = 1
        self.env.schedule(self)
        return self


class _RefTimeout(_RefEvent):
    def __init__(self, env, delay, value=None):
        super().__init__(env)
        self.ok = True
        self.value = value
        self.state = 1
        env.schedule(self, delay=delay)


class _RefProcess(_RefEvent):
    def __init__(self, env, gen):
        super().__init__(env)
        self.gen = gen
        init = _RefEvent(env)
        init.callbacks.append(self._resume)
        init.ok = True
        init.state = 1
        env.schedule(init, priority=0)

    def _resume(self, event):
        while True:
            try:
                next_ev = self.gen.send(event.value)
            except StopIteration as stop:
                self.state = 0
                self.succeed(stop.value)
                return
            if next_ev.state == 2:
                event = next_ev
                continue
            next_ev.callbacks.append(self._resume)
            return


class _RefAllOf(_RefEvent):
    def __init__(self, env, events):
        super().__init__(env)
        self.events = list(events)
        self.count = 0
        for ev in self.events:
            if ev.state == 2:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and self.state == 0:
            self.succeed({})

    def _check(self, event):
        if self.state != 0:
            return
        self.count += 1
        if self.count == len(self.events):
            self.succeed(None)


class _RefAnyOf(_RefEvent):
    def __init__(self, env, events):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.state == 2:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event):
        if self.state == 0:
            self.succeed(None)


class _RefEnvironment:
    def __init__(self):
        self.now = 0.0
        self.heap = []
        self.counter = itertools.count()

    def schedule(self, event, delay=0.0, priority=1):
        heapq.heappush(
            self.heap, (self.now + delay, priority, next(self.counter), event)
        )

    def timeout(self, delay, value=None):
        return _RefTimeout(self, delay, value)

    def event(self):
        return _RefEvent(self)

    def process(self, gen):
        return _RefProcess(self, gen)

    def all_of(self, events):
        return _RefAllOf(self, events)

    def any_of(self, events):
        return _RefAnyOf(self, events)

    def run(self):
        while self.heap:
            when, _prio, _tie, event = heapq.heappop(self.heap)
            self.now = when
            callbacks, event.callbacks = event.callbacks, []
            event.state = 2
            for cb in callbacks:
                cb(event)


# ------------------------------------------------------------ random program
# One program description drives both engines.  Actions reference events by
# index into a shared pool so the two runs build isomorphic structures.


def _make_program(seed: int):
    rng = random.Random(seed)
    n_procs = rng.randint(4, 12)
    n_events = rng.randint(2, 5)
    program = []
    for p in range(n_procs):
        steps = []
        for _ in range(rng.randint(1, 8)):
            roll = rng.random()
            if roll < 0.45:
                steps.append(("sleep", round(rng.uniform(0.0, 3.0), 3)))
            elif roll < 0.6:
                steps.append(("fire", rng.randrange(n_events)))
            elif roll < 0.75:
                steps.append(("wait", rng.randrange(n_events)))
            elif roll < 0.9:
                steps.append(
                    ("all", [round(rng.uniform(0.0, 2.0), 3) for _ in range(2)])
                )
            else:
                steps.append(
                    ("any", [round(rng.uniform(0.0, 2.0), 3) for _ in range(2)])
                )
        program.append(steps)
    return program, n_events


def _drive(env, make_all, make_any, program, n_events, trace):
    events = [env.event() for _ in range(n_events)]
    fired = [False] * n_events

    def proc(pid, steps):
        for op, arg in steps:
            if op == "sleep":
                yield env.timeout(arg)
            elif op == "fire":
                if not fired[arg]:
                    fired[arg] = True
                    events[arg].succeed((pid, arg))
                yield env.timeout(0)
            elif op == "wait":
                # only wait on events some process will (or did) fire, else
                # the run would deadlock identically but trace less
                if fired[arg] or any(
                    ("fire", arg) in s for s in program
                ):
                    yield events[arg]
                else:
                    yield env.timeout(0)
            elif op == "all":
                yield make_all([env.timeout(d) for d in arg])
            elif op == "any":
                yield make_any([env.timeout(d) for d in arg])
            trace.append((round(env.now, 9), pid, op))

    for pid, steps in enumerate(program):
        env.process(proc(pid, steps))
    env.run()
    return trace


@pytest.mark.parametrize("seed", range(8))
def test_randomized_program_matches_reference_engine(seed):
    program, n_events = _make_program(seed)

    ref_env = _RefEnvironment()
    ref_trace = _drive(
        ref_env, ref_env.all_of, ref_env.any_of, program, n_events, []
    )

    env = Environment()
    opt_trace = _drive(env, env.all_of, env.any_of, program, n_events, [])

    assert opt_trace == ref_trace
    # The integer-µs core accumulates delays exactly; the float reference
    # drifts by ulps (e.g. 20.296999999999997 vs 20.297).  Compare on the
    # microsecond grid, where both must agree.
    assert env.now_us == round(ref_env.now * 1e6)
    assert env.now == pytest.approx(ref_env.now, abs=1e-9)


# ------------------------------------------- integer-µs key-order properties
# The engine orders the heap by (t_us, phase, seq); the seed engine ordered
# by (float_t, priority, tie).  For any schedule whose times sit on the µs
# grid — which is every time the engine can represent — the two orders must
# be the same permutation.

_SCHEDULE = st.lists(
    st.tuples(
        # up to ~11.5 simulated days in µs: far beyond any scenario, far
        # below where float64 could start conflating distinct µs values
        st.integers(min_value=0, max_value=10**12),
        st.sampled_from([PHASE_URGENT, PHASE_NORMAL, PHASE_LATE]),
    ),
    min_size=1,
    max_size=200,
)


@given(_SCHEDULE)
@settings(deadline=None)
def test_int_key_order_reproduces_float_reference_order(entries):
    int_keys = [(t_us, phase, seq) for seq, (t_us, phase) in enumerate(entries)]
    float_keys = [
        (t_us / 1e6, phase, seq) for seq, (t_us, phase) in enumerate(entries)
    ]
    assert sorted(range(len(entries)), key=int_keys.__getitem__) == sorted(
        range(len(entries)), key=float_keys.__getitem__
    )


@given(_SCHEDULE)
@settings(deadline=None, max_examples=50)
def test_engine_fires_in_float_reference_order(entries):
    """Same property end-to-end: timeouts scheduled with explicit phases
    fire in exactly the order the seed's float keys would have produced."""
    env = Environment()
    order = []
    for i, (t_us, phase) in enumerate(entries):
        timeout = env.timeout_us(t_us, phase=phase)
        timeout.callbacks.append(lambda _ev, i=i: order.append(i))
    env.run()
    expected = sorted(
        range(len(entries)),
        key=lambda i: (entries[i][0] / 1e6, entries[i][1], i),
    )
    assert order == expected


def test_float_shim_accumulates_exactly_on_the_microsecond_grid():
    """0.1 is not a binary float; ten of them sum to 0.9999999999999999.
    The shim rounds each delay onto the µs grid, so ten 0.1 s timeouts land
    on exactly one second — accumulated error is zero, not ulps."""
    env = Environment()

    def ticker():
        for _ in range(10):
            yield env.timeout(0.1)

    env.run(env.process(ticker()))
    assert env.now_us == 1_000_000
    assert env.now == 1.0


def test_hours_long_accumulation_stays_exact():
    """An odd per-tick µs count repeated for ~28 simulated hours: integer
    time accumulates exactly; a float clock would have drifted off-grid."""
    tick_us = 3_600_000_007  # one hour and seven microseconds
    env = Environment()

    def ticker():
        for _ in range(28):
            yield env.timeout_us(tick_us)

    env.run(env.process(ticker()))
    assert env.now_us == 28 * tick_us
    assert env.now == (28 * tick_us) / 1e6


def test_century_horizon_fits_the_grid():
    """Very long horizons (100 simulated years ≈ 3.2e15 µs) stay well below
    2^53, so both the integer clock and the float-seconds view stay exact."""
    century_us = 100 * 365 * 24 * 3600 * 10**6
    env = Environment()
    fired = []
    timeout = env.timeout_us(century_us, value="tick")
    timeout.callbacks.append(lambda _ev: fired.append(env.now_us))
    env.run()
    assert fired == [century_us]
    assert env.now_us == century_us
    assert env.now == century_us / 1e6


# ----------------------------------------------- sweep determinism extension


def test_randomized_cells_digest_stable_across_executor_modes():
    """Determinism regression extended to the sweep executor: a randomized
    cell produces one digest whether run inline, serially, or in a worker
    process."""
    from repro.fault.digest import cluster_digest
    from repro.harness.runner import ExperimentConfig, run_experiment
    from repro.harness.sweep import SweepExecutor

    rng = random.Random(20250728)
    cfgs = []
    for _ in range(2):
        cfgs.append(
            ExperimentConfig(
                method=rng.choice(["tsue", "pl", "fo"]),
                trace=rng.choice(["tencloud", "alicloud"]),
                k=4,
                m=2,
                n_osds=10,
                n_clients=rng.choice([2, 4]),
                n_ops=rng.randint(80, 140),
                block_size=1 << 16,
                log_unit_size=1 << 17,
                n_files=2,
                stripes_per_file=2,
                seed=rng.randrange(1 << 16),
            )
        )
    inline_digests = [
        cluster_digest(run_experiment(cfg, keep_cluster=True).ecfs)
        for cfg in cfgs
    ]
    # the executor cannot return clusters; compare the observables it does
    # return against fresh inline runs (twice, to pin determinism)
    serial = SweepExecutor(workers=1).run(cfgs)
    parallel = SweepExecutor(workers=2).run(cfgs)
    for cfg, s, p in zip(cfgs, serial, parallel):
        assert s.iops == p.iops
        assert s.latency == p.latency
        assert s.elapsed_sim == p.elapsed_sim
        assert s.workload == p.workload
    rerun_digests = [
        cluster_digest(run_experiment(cfg, keep_cluster=True).ecfs)
        for cfg in cfgs
    ]
    assert inline_digests == rerun_digests
