"""Behavioral tests for TSUE's paper-specific mechanisms."""

import numpy as np
import pytest

from repro.cluster import BlockId, ClusterConfig, ECFS
from repro.traces import TraceReplayer, generate_trace, tencloud_spec
from repro.update.tsue import TSUEOptions


def _cluster(seed=31, options=None, **kw):
    defaults = dict(
        n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17, seed=seed
    )
    defaults.update(kw)
    opts = {"options": options} if options else {}
    return ECFS(ClusterConfig(**defaults), method="tsue", method_options=opts)


def _replay(ecfs, n_ops=200, n_clients=8, seed=2):
    files = ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    fsize = ecfs.mds.lookup(files[0]).size
    trace = generate_trace(tencloud_spec(), n_ops, files, fsize, seed=seed)
    return files, TraceReplayer(ecfs, trace).run(n_clients=n_clients)


def test_datalog_replica_receives_every_update():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    rep_idx = ecfs.placement.replica_osd(block)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    rep = ecfs.osds[rep_idx]
    assert ecfs.method.replica_log_bytes[rep.name] == 4096


def test_read_cache_hit_avoids_device():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    osd = ecfs.osd_hosting(block)

    def flow():
        yield ecfs.env.process(client.update(files[0], 0, 4096))
        reads_before = osd.device.counters.reads
        data = yield ecfs.env.process(client.read(files[0], 0, 4096))
        # full hit in the DataLog index: zero device reads on the read path
        # (background recycle may read, but those are tagged reads that can
        # only START after the log unit seals — none sealed yet here)
        return reads_before, osd.device.counters.reads, data

    before, after, data = ecfs.env.run(ecfs.env.process(flow()))
    assert before == after
    assert np.array_equal(data, ecfs.oracle.expected(block)[:4096])


def test_recycled_unit_serves_reads_until_reused():
    """RECYCLED units keep their index as a read cache (§3.2.1)."""
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    ecfs.drain()  # unit recycled, but index retained
    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    pool = ecfs.method._pool(ecfs.osd_hosting(block), "datalog", block)
    assert pool.lookup(block, 0, 4096) is not None


def test_memory_quota_bounds_pool_growth():
    opts = TSUEOptions(max_units=2, unit_size=1 << 16)
    ecfs = _cluster(options=opts)
    _replay(ecfs, n_ops=300)
    for layers in ecfs.method.pools.values():
        for pools in layers.values():
            for pool in pools:
                assert pool.n_units <= 2


def test_small_quota_causes_stalls_large_does_not():
    """Fig. 6a's mechanism: 1-unit pools stall appends behind recycling."""
    small = _cluster(seed=33, options=TSUEOptions(max_units=1, min_units=1))
    _replay(small, n_ops=400)
    big = _cluster(seed=33, options=TSUEOptions(max_units=8))
    _replay(big, n_ops=400)
    assert small.method.stall_stats()["stalls"] > big.method.stall_stats()["stalls"]


def test_residence_stats_populated():
    ecfs = _cluster()
    _replay(ecfs)
    ecfs.drain()
    stats = ecfs.method.residence_stats()
    assert stats["datalog"]["append"] > 0
    assert stats["datalog"]["buffer"] > 0
    assert stats["datalog"]["recycle"] > 0
    # delta layer active (m=2 with deltalog on)
    assert stats["deltalog"]["append"] > 0


def test_no_deltalog_option_skips_layer():
    ecfs = _cluster(options=TSUEOptions(use_deltalog=False))
    _replay(ecfs)
    ecfs.drain()
    assert ecfs.verify() == 4
    stats = ecfs.method.residence_stats()
    assert stats["deltalog"]["append"] == 0
    assert stats["paritylog"]["append"] > 0


def test_hdd_options_replicate_twice():
    opts = TSUEOptions.hdd()
    assert opts.datalog_replicas == 2
    assert not opts.use_deltalog
    ecfs = _cluster(options=opts, device="hdd")
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    total_rep = sum(ecfs.method.replica_log_bytes.values())
    assert total_rep == 2 * 4096


def test_breakdown_ladder_is_cumulative():
    ladder = TSUEOptions.breakdown()
    assert list(ladder) == ["Baseline", "O1", "O2", "O3", "O4", "O5"]
    assert not ladder["Baseline"].datalog_locality
    assert ladder["O1"].datalog_locality and not ladder["O1"].backend_locality
    assert ladder["O3"].use_logpool and ladder["O3"].pools_per_device == 1
    assert ladder["O4"].pools_per_device == 4
    assert ladder["O5"].use_deltalog


def test_locality_merging_reduces_recycle_records():
    """O1's point: merged extents << raw records under a hot workload."""
    ecfs = _cluster(seed=34)
    _replay(ecfs, n_ops=400)
    ecfs.drain()
    planner = ecfs.method.planner
    assert planner.raw_records > 0
    assert planner.reduction_ratio > 1.2


def test_log_debt_reported_then_drained():
    ecfs = _cluster(seed=35)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    assert ecfs.total_log_debt() > 0  # sitting in the active DataLog unit
    ecfs.drain()
    assert ecfs.total_log_debt() == 0


def test_oracle_commit_order_matches_log_order():
    """Two racing same-address updates: final block equals last log append."""
    ecfs = _cluster(seed=36)
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    clients = ecfs.add_clients(2)
    env = ecfs.env
    procs = [
        env.process(clients[i].update(files[0], 0, 4096), name=f"u{i}")
        for i in range(2)
    ]
    env.run(env.all_of(procs))
    ecfs.drain()
    assert ecfs.verify() == 1
