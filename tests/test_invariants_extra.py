"""Additional cross-cutting invariants: EC linearity, placement balance,
device accounting conservation, and method-specific edge behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ECFS, Placement
from repro.ec import RSCode
from repro.gf.field import gf_mul_scalar
from repro.traces import TraceReplayer, generate_trace, tencloud_spec


# ------------------------------------------------------------ EC linearity
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), coef=st.integers(1, 255))
def test_encode_is_linear(seed, coef):
    """encode(a*X + Y) == a*encode(X) + encode(Y) — the property that makes
    delta-based updates sound in the first place."""
    rng = np.random.default_rng(seed)
    rs = RSCode(4, 2)
    xs = [rng.integers(0, 256, 128, dtype=np.uint8) for _ in range(4)]
    ys = [rng.integers(0, 256, 128, dtype=np.uint8) for _ in range(4)]
    combo = [gf_mul_scalar(coef, x) ^ y for x, y in zip(xs, ys)]
    direct = rs.encode(combo)
    separate = [
        gf_mul_scalar(coef, px) ^ py
        for px, py in zip(rs.encode(xs), rs.encode(ys))
    ]
    for a, b in zip(direct, separate):
        assert np.array_equal(a, b)


def test_decode_from_parity_only():
    """All k data blocks lost: parity-only decode (k <= m needed)."""
    rs = RSCode(2, 3)
    rng = np.random.default_rng(9)
    data = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(2)]
    parity = rs.encode(data)
    survivors = {2 + j: p for j, p in enumerate(parity)}
    rebuilt = rs.decode(survivors, [0, 1])
    assert np.array_equal(rebuilt[0], data[0])
    assert np.array_equal(rebuilt[1], data[1])


# -------------------------------------------------------- placement balance
def test_placement_spreads_load_evenly():
    """Over many stripes, block counts per OSD stay within 2x of uniform."""
    p = Placement(n_osds=16, k=6, m=4)
    counts = [0] * 16
    for fid in range(1, 30):
        for s in range(20):
            for osd in p.stripe_osds(fid, s):
                counts[osd] += 1
    mean = sum(counts) / len(counts)
    assert min(counts) > mean / 2
    assert max(counts) < mean * 2


def test_parity_role_rotates_across_stripes():
    """Parity blocks must not pin to fixed nodes (hot-parity imbalance)."""
    p = Placement(n_osds=16, k=6, m=4)
    parity_nodes = set()
    for fid in range(1, 10):
        for s in range(10):
            parity_nodes.update(p.parity_osds(fid, s))
    assert len(parity_nodes) == 16  # every node serves parity somewhere


# ----------------------------------------------------- accounting invariants
def _run(method, n_ops=150):
    # m=4 as in Table 1: the DeltaLog's traffic reduction needs fan-out to
    # beat PL's m-per-update delta shipping
    ecfs = ECFS(
        ClusterConfig(
            n_osds=10, k=4, m=4, block_size=1 << 16, log_unit_size=1 << 17, seed=81
        ),
        method=method,
    )
    files = ecfs.populate(n_files=2, stripes_per_file=2, fill="zeros")
    trace = generate_trace(
        tencloud_spec(), n_ops, files, ecfs.mds.lookup(files[0]).size, seed=5
    )
    TraceReplayer(ecfs, trace).run(n_clients=8)
    ecfs.drain()
    return ecfs


@pytest.mark.parametrize("method", ["fo", "pl", "tsue"])
def test_device_counters_conserve(method):
    """seq + random ops == total ops; overwrites <= writes; busy time > 0."""
    ecfs = _run(method)
    for osd in ecfs.osds:
        c = osd.device.counters
        assert c.seq_ops + c.rand_ops == c.reads + c.writes
        assert c.overwrites <= c.writes
        assert c.overwrite_bytes <= c.write_bytes
        if c.total_ops:
            assert c.busy_time > 0


def test_nic_tx_rx_balance():
    """Every transmitted byte is received by exactly one NIC."""
    ecfs = _run("tsue")
    tx = sum(nic.tx_bytes for nic in ecfs.net.nics.values())
    rx = sum(nic.rx_bytes for nic in ecfs.net.nics.values())
    assert tx == rx == ecfs.net.total_bytes


def test_tsue_network_below_pl_for_same_workload():
    """Table 1's network ordering on an identical workload."""
    pl = _run("pl")
    tsue = _run("tsue")
    assert tsue.net.total_bytes < pl.net.total_bytes


def test_wear_flush_idempotent():
    ecfs = _run("tsue")
    wear = ecfs.osds[0].device.wear
    wear.flush()
    first = wear.page_programs
    wear.flush()
    assert wear.page_programs == first


# -------------------------------------------------------- method edge cases
def test_update_to_every_data_block_of_stripe():
    """Cross-block Eq. (5) merging exercised: all k blocks of one stripe
    updated at the same in-block offset, then verified."""
    ecfs = ECFS(
        ClusterConfig(
            n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17, seed=82
        ),
        method="tsue",
    )
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env
    bs = ecfs.config.block_size

    def flow():
        for i in range(ecfs.rs.k):
            yield env.process(client.update(files[0], i * bs + 8192, 4096))

    env.run(env.process(flow()))
    ecfs.drain()
    assert ecfs.verify() == 1


def test_full_block_update():
    ecfs = ECFS(
        ClusterConfig(
            n_osds=10, k=4, m=2, block_size=1 << 14, log_unit_size=1 << 15, seed=83
        ),
        method="tsue",
    )
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(
        ecfs.env.process(client.update(files[0], 0, ecfs.config.block_size))
    )
    ecfs.drain()
    assert ecfs.verify() == 1


def test_interleaved_reads_and_updates_stay_fresh():
    """Alternating update/read on one address must always read back the
    latest committed payload (no stale window, any method)."""
    for method in ("tsue", "fl", "parix"):
        ecfs = ECFS(
            ClusterConfig(
                n_osds=10, k=4, m=2, block_size=1 << 16,
                log_unit_size=1 << 17, seed=84,
            ),
            method=method,
        )
        files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
        (client,) = ecfs.add_clients(1)
        env = ecfs.env

        def flow():
            from repro.cluster.ids import BlockId

            for _ in range(5):
                yield env.process(client.update(files[0], 0, 4096))
                data = yield env.process(client.read(files[0], 0, 4096))
                expected = ecfs.oracle.expected(BlockId(files[0], 0, 0))[:4096]
                assert np.array_equal(data, expected), method

        env.run(env.process(flow()))
