"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        yield env.timeout(0.5)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(2.0)


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield env.timeout(3.0)
        ev.succeed(42)

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [42]
    assert env.now == pytest.approx(3.0)


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def proc():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_raises_from_run():
    env = Environment()

    def proc():
        raise ValueError("unhandled")
        yield  # pragma: no cover

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_process_return_value_via_yield():
    env = Environment()
    results = []

    def child():
        yield env.timeout(1)
        return "done"

    def parent():
        value = yield env.process(child())
        results.append(value)

    env.process(parent())
    env.run()
    assert results == ["done"]


def test_run_until_event_returns_value():
    env = Environment()

    def child():
        yield env.timeout(2)
        return 99

    proc = env.process(child())
    assert env.run(proc) == 99


def test_run_until_time_stops_clock():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1)

    env.process(ticker())
    env.run(until=5.5)
    assert env.now == pytest.approx(5.5)


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=1.0)
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        results = yield env.all_of([t1, t2])
        done.append(sorted(results.values()))

    env.process(proc())
    env.run()
    assert done == [["a", "b"]]
    assert env.now == pytest.approx(3.0)


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        yield env.any_of([env.timeout(1), env.timeout(5)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [pytest.approx(1.0)]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_interrupt_raises_in_process():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((intr.cause, env.now))

    def attacker(proc):
        yield env.timeout(1)
        proc.interrupt("failure-injection")

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    # interrupt delivered at t=1 (the abandoned timeout still drains later)
    assert caught == [("failure-injection", 1.0)]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(0)

    proc = env.process(quick())
    env.run()
    proc.interrupt()  # must not raise


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_cross_environment_event_rejected():
    env1, env2 = Environment(), Environment()
    foreign = env2.event()

    def proc():
        yield foreign

    env1.process(proc())
    foreign.succeed()
    with pytest.raises(SimulationError):
        env1.run()


def test_event_ordering_fifo_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == pytest.approx(7.0)
    env.run()
    assert env.peek() == float("inf")


# ---------------------------------------------------------------- cancellation


def test_cancelled_timeout_never_fires_nor_advances_clock():
    env = Environment()
    t = env.timeout(5.0)
    t.cancel()
    assert t.cancelled
    env.run()
    # the cancelled placeholder is discarded silently: no callback ran and
    # the clock never advanced to its timestamp
    assert env.now == 0.0
    assert env.peek() == float("inf")


def test_cancel_drops_waiter_wakeups():
    """No wakeups after cancel: a condition holding a cancelled timeout only
    fires through its other members."""
    env = Environment()
    woke = []

    def waiter(ev, t):
        yield env.any_of([ev, t])
        woke.append(env.now)

    ev = env.event()
    t = env.timeout(1.0)
    env.process(waiter(ev, t))
    t.cancel()

    def firer():
        yield env.timeout(3.0)
        ev.succeed()

    env.process(firer())
    env.run()
    assert woke == [3.0]  # not 1.0: the cancelled timeout never woke anyone


def test_cancel_pending_and_processed_is_noop():
    env = Environment()
    ev = env.event()
    ev.cancel()  # pending: no-op
    assert not ev.cancelled
    t = env.timeout(0)
    env.run()
    t.cancel()  # processed: no-op
    assert not t.cancelled


def test_interrupt_cancels_abandoned_timeout():
    """The interrupted process's private timeout is cancelled outright, so
    the simulation does not drain a stale wakeup at t=100."""
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((intr.cause, env.now))

    def attacker(proc):
        yield env.timeout(1)
        proc.interrupt("die")

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    assert caught == [("die", 1.0)]
    assert env.now == 1.0  # seed drained the abandoned timeout at t=100
    assert env.peek() == float("inf")


def test_steps_counts_processed_events_only():
    env = Environment()
    t = env.timeout(1.0)
    env.timeout(2.0)
    t.cancel()
    env.run()
    assert env.steps == 1  # the cancelled entry does not count


# ------------------------------------------------------- run(until=Event) ties


def test_run_until_event_drains_earlier_same_time_events():
    """Documented tie-break: when the stop event fires at time T, remaining
    heap entries at T that were *scheduled before it* (smaller tie counter)
    are drained before run() returns; later-scheduled ones stay pending and
    peek() reports them."""
    env = Environment()
    order = []
    t_a = env.timeout(1.0)  # scheduled before the stop event (smaller tie)
    t_b = env.timeout(1.0)

    def logger(tag, t):
        yield t
        order.append(tag)

    env.process(logger("a", t_a))
    env.process(logger("b", t_b))
    # a priority-0 stop event at t=1 pops ahead of the same-time timeouts
    # even though they were scheduled first — the drain still runs them
    stop = env.event()
    stop._ok = True
    stop._state = 1  # triggered
    env._schedule(stop, delay=1.0, priority=0)
    env.run(stop)
    assert order == ["a", "b"]
    # the logger processes' completion events were scheduled *after* the
    # stop event and are still pending at t=1
    assert env.peek() == pytest.approx(1.0)
    env.run()
    assert env.now == pytest.approx(1.0)


def test_run_until_already_processed_event_returns_value():
    env = Environment()
    t = env.timeout(0, value="x")
    env.run()
    assert t.processed
    assert env.run(until=t) == "x"


def test_schedule_at_absolute_time():
    env = Environment()
    ev = env.event()
    ev._ok = True
    ev._state = 1
    env.schedule_at(ev, 4.5)
    env.run()
    assert env.now == pytest.approx(4.5)
    with pytest.raises(ValueError):
        env.schedule_at(env.event(), 1.0)  # in the past
