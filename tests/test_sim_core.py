"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        yield env.timeout(0.5)

    env.process(proc())
    env.run()
    assert env.now == pytest.approx(2.0)


def test_timeout_value_delivered():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield env.timeout(3.0)
        ev.succeed(42)

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [42]
    assert env.now == pytest.approx(3.0)


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def proc():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_raises_from_run():
    env = Environment()

    def proc():
        raise ValueError("unhandled")
        yield  # pragma: no cover

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_process_return_value_via_yield():
    env = Environment()
    results = []

    def child():
        yield env.timeout(1)
        return "done"

    def parent():
        value = yield env.process(child())
        results.append(value)

    env.process(parent())
    env.run()
    assert results == ["done"]


def test_run_until_event_returns_value():
    env = Environment()

    def child():
        yield env.timeout(2)
        return 99

    proc = env.process(child())
    assert env.run(proc) == 99


def test_run_until_time_stops_clock():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1)

    env.process(ticker())
    env.run(until=5.5)
    assert env.now == pytest.approx(5.5)


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=1.0)
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(3, value="b")
        results = yield env.all_of([t1, t2])
        done.append(sorted(results.values()))

    env.process(proc())
    env.run()
    assert done == [["a", "b"]]
    assert env.now == pytest.approx(3.0)


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc():
        yield env.any_of([env.timeout(1), env.timeout(5)])
        times.append(env.now)

    env.process(proc())
    env.run()
    assert times == [pytest.approx(1.0)]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc():
        yield env.all_of([])
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [0.0]


def test_interrupt_raises_in_process():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((intr.cause, env.now))

    def attacker(proc):
        yield env.timeout(1)
        proc.interrupt("failure-injection")

    proc = env.process(victim())
    env.process(attacker(proc))
    env.run()
    # interrupt delivered at t=1 (the abandoned timeout still drains later)
    assert caught == [("failure-injection", 1.0)]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(0)

    proc = env.process(quick())
    env.run()
    proc.interrupt()  # must not raise


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_cross_environment_event_rejected():
    env1, env2 = Environment(), Environment()
    foreign = env2.event()

    def proc():
        yield foreign

    env1.process(proc())
    foreign.succeed()
    with pytest.raises(SimulationError):
        env1.run()


def test_event_ordering_fifo_at_same_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == pytest.approx(7.0)
    env.run()
    assert env.peek() == float("inf")
