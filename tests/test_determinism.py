"""Determinism regression: one seed => byte-identical runs.

Runs the Fig. 5 experiment pipeline twice with the same seed and asserts
identical event counts and canonical metric digests (which cover the sim
clock, op counts, latency sums, per-device counters, network totals, and a
hash of every block's bytes).  Any nondeterminism in the DES event order,
RNG plumbing, or data movement changes the digest.
"""

import pytest

from repro.fault.digest import cluster_digest, content_digest
from repro.harness.runner import ExperimentConfig, run_experiment


def _small_cfg(seed: int = 4242) -> ExperimentConfig:
    return ExperimentConfig(
        method="tsue",
        trace="tencloud",
        k=4,
        m=2,
        n_osds=10,
        n_clients=4,
        n_ops=200,
        block_size=1 << 16,
        log_unit_size=1 << 17,
        n_files=2,
        stripes_per_file=2,
        seed=seed,
        verify=True,
    )


def test_fig5_pipeline_deterministic():
    a = run_experiment(_small_cfg(), keep_cluster=True)
    b = run_experiment(_small_cfg(), keep_cluster=True)
    # event counts
    assert a.ecfs.metrics.updates.count == b.ecfs.metrics.updates.count
    assert a.ecfs.metrics.reads.count == b.ecfs.metrics.reads.count
    assert a.ecfs.net.total_msgs == b.ecfs.net.total_msgs
    assert a.ecfs.net.total_bytes == b.ecfs.net.total_bytes
    assert a.ecfs.env.now == b.ecfs.env.now
    assert a.iops == b.iops
    assert a.latency == b.latency
    # byte-identical metric digest (includes block content hash)
    assert cluster_digest(a.ecfs) == cluster_digest(b.ecfs)


def test_different_seed_changes_digest():
    a = run_experiment(_small_cfg(seed=1), keep_cluster=True)
    b = run_experiment(_small_cfg(seed=2), keep_cluster=True)
    assert cluster_digest(a.ecfs) != cluster_digest(b.ecfs)


@pytest.mark.parametrize("method", ["fo", "pl", "tsue"])
def test_determinism_across_methods(method):
    def digest():
        cfg = _small_cfg()
        cfg.method = method
        cfg.n_ops = 120
        return content_digest(run_experiment(cfg, keep_cluster=True).ecfs)

    assert digest() == digest()
