"""Unit + property tests for Reed-Solomon coding and incremental updates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, DecodeError
from repro.ec import (
    RSCode,
    apply_parity_delta,
    cauchy_matrix,
    coding_matrix,
    data_delta,
    merge_deltas_same_address,
    parity_delta,
    stripe_parity_delta,
    vandermonde_matrix,
)
from repro.gf.matrix import gf_mat_rank


def _stripe(rs, size=1024, seed=0):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(rs.k)]
    return data, rs.encode(data)


# ----------------------------------------------------------------- matrices
def test_cauchy_full_rank_rows():
    m = cauchy_matrix(6, 3)
    assert m.shape == (3, 6)
    assert gf_mat_rank(m) == 3


def test_vandermonde_first_row_is_ones():
    m = vandermonde_matrix(5, 3)
    assert (m[0] == 1).all()


def test_coding_matrix_rejects_bad_kind():
    with pytest.raises(ConfigError):
        coding_matrix(4, 2, "bogus")


def test_coding_matrix_rejects_overflow():
    with pytest.raises(ConfigError):
        coding_matrix(200, 100)


# ---------------------------------------------------------------- RS basics
def test_encode_shapes_and_verify():
    rs = RSCode(4, 2)
    data, parity = _stripe(rs)
    assert len(parity) == 2
    assert all(p.shape == (1024,) for p in parity)
    assert rs.verify(data, parity)


def test_verify_detects_corruption():
    rs = RSCode(4, 2)
    data, parity = _stripe(rs)
    parity[0][10] ^= 0xFF
    assert not rs.verify(data, parity)


def test_unequal_block_sizes_rejected():
    rs = RSCode(2, 1)
    with pytest.raises(ConfigError):
        rs.encode([np.zeros(8, dtype=np.uint8), np.zeros(9, dtype=np.uint8)])


def test_bad_geometry_rejected():
    with pytest.raises(ConfigError):
        RSCode(0, 2)
    with pytest.raises(ConfigError):
        RSCode(2, 0)


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=8),
    m=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_any_m_erasures_recoverable(k, m, seed):
    rng = np.random.default_rng(seed)
    rs = RSCode(k, m)
    data, parity = _stripe(rs, size=256, seed=seed)
    full = {i: b for i, b in enumerate(data)}
    full.update({k + j: p for j, p in enumerate(parity)})
    erased = sorted(rng.choice(k + m, size=m, replace=False).tolist())
    survivors = {i: v for i, v in full.items() if i not in erased}
    rebuilt = rs.decode(survivors, erased)
    for e in erased:
        assert np.array_equal(rebuilt[e], full[e])


def test_too_many_erasures_rejected():
    rs = RSCode(4, 2)
    data, parity = _stripe(rs)
    full = {i: b for i, b in enumerate(data)}
    full.update({4 + j: p for j, p in enumerate(parity)})
    survivors = {i: v for i, v in full.items() if i > 2}
    with pytest.raises(DecodeError):
        rs.decode(survivors, [0, 1, 2])


def test_decode_with_no_erasures_is_empty():
    rs = RSCode(3, 2)
    data, parity = _stripe(rs)
    assert rs.decode({i: b for i, b in enumerate(data)}, []) == {}


def test_decode_insufficient_survivors():
    rs = RSCode(4, 2)
    data, _ = _stripe(rs)
    with pytest.raises(DecodeError):
        rs.decode({0: data[0], 1: data[1]}, [2])


# --------------------------------------------------------------- increments
def test_parity_delta_matches_reencode():
    """Eq. (2): applying a_ij * (D'-D) to P gives the re-encoded parity."""
    rs = RSCode(5, 3)
    data, parity = _stripe(rs, seed=3)
    rng = np.random.default_rng(4)
    new_block = rng.integers(0, 256, 1024, dtype=np.uint8)

    delta = data_delta(new_block, data[2])
    for j in range(rs.m):
        pd = parity_delta(int(rs.coding[j, 2]), delta)
        updated = apply_parity_delta(parity[j], pd)
        reencoded = rs.encode([new_block if i == 2 else data[i] for i in range(5)])
        assert np.array_equal(updated, reencoded[j])


def test_data_delta_shape_mismatch():
    with pytest.raises(ValueError):
        data_delta(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31))
def test_merged_deltas_telescope(n_updates, seed):
    """Eq. (3)/(4): folding n successive deltas equals newest ^ original."""
    rng = np.random.default_rng(seed)
    versions = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(n_updates + 1)]
    deltas = [versions[i + 1] ^ versions[i] for i in range(n_updates)]
    merged = merge_deltas_same_address(deltas)
    assert np.array_equal(merged, versions[-1] ^ versions[0])


def test_merge_empty_rejected():
    with pytest.raises(ValueError):
        merge_deltas_same_address([])


def test_stripe_parity_delta_matches_full_reencode():
    """Eq. (5): cross-block merged delta equals re-encoding the stripe."""
    rs = RSCode(6, 3)
    data, parity = _stripe(rs, seed=7)
    rng = np.random.default_rng(8)
    new = {1: rng.integers(0, 256, 1024, dtype=np.uint8),
           4: rng.integers(0, 256, 1024, dtype=np.uint8)}
    block_deltas = {i: new[i] ^ data[i] for i in new}

    updated_data = [new.get(i, data[i]) for i in range(6)]
    reencoded = rs.encode(updated_data)
    for j in range(rs.m):
        pd = stripe_parity_delta(rs.coding[j], block_deltas)
        assert np.array_equal(apply_parity_delta(parity[j], pd), reencoded[j])


def test_stripe_parity_delta_validations():
    rs = RSCode(3, 1)
    with pytest.raises(ValueError):
        stripe_parity_delta(rs.coding[0], {})
    with pytest.raises(ValueError):
        stripe_parity_delta(rs.coding[0], {5: np.zeros(4, dtype=np.uint8)})
