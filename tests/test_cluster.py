"""Tests for placement, MDS, OSD primitives, and the ECFS facade."""

import numpy as np
import pytest

from repro.cluster import BlockId, BlockKind, ClusterConfig, ECFS, Placement, block_kind
from repro.common.errors import ConfigError, IntegrityError
from repro.storage.base import IOKind


def _small_config(**kw):
    defaults = dict(n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17)
    defaults.update(kw)
    return ClusterConfig(**defaults)


# ------------------------------------------------------------- placement
def test_stripe_blocks_on_distinct_osds():
    p = Placement(n_osds=16, k=6, m=4)
    for fid in range(5):
        for s in range(5):
            osds = p.stripe_osds(fid, s)
            assert len(set(osds)) == 10


def test_placement_deterministic():
    p = Placement(16, 6, 4)
    b = BlockId(3, 7, 2)
    assert p.osd_of(b) == p.osd_of(BlockId(3, 7, 2))


def test_replica_osd_not_in_stripe():
    p = Placement(16, 6, 4)
    b = BlockId(1, 0, 0)
    rep = p.replica_osd(b)
    assert rep not in set(p.stripe_osds(1, 0))


def test_replica_osd_full_width_falls_back_to_neighbour():
    p = Placement(10, 6, 4)  # stripe covers every node
    b = BlockId(1, 0, 2)
    assert p.replica_osd(b) == (p.osd_of(b) + 1) % 10


def test_parity_osds_match_block_indices():
    p = Placement(16, 6, 4)
    assert p.parity_osds(2, 3) == [p.osd_of(BlockId(2, 3, 6 + j)) for j in range(4)]


def test_placement_needs_enough_nodes():
    with pytest.raises(ValueError):
        Placement(5, 4, 2)


def test_block_kind():
    assert block_kind(BlockId(1, 0, 3), k=4) is BlockKind.DATA
    assert block_kind(BlockId(1, 0, 4), k=4) is BlockKind.PARITY


def test_pool_of_stable_and_bounded():
    p = Placement(16, 6, 4, log_pools=4)
    for i in range(50):
        b = BlockId(1, i, i % 10)
        assert 0 <= p.pool_of(b) < 4
        assert p.pool_of(b) == p.pool_of(b)


# ------------------------------------------------------------------ MDS
def test_mds_classify_write_then_update():
    ecfs = ECFS(_small_config(), method="fo")
    meta = ecfs.mds.create_file(1 << 18)
    assert ecfs.mds.classify(meta.file_id, 0, 4096) == "write"
    ecfs.mds.mark_written(meta.file_id, 0, 8192)
    assert ecfs.mds.classify(meta.file_id, 0, 4096) == "update"
    assert ecfs.mds.classify(meta.file_id, 4096, 8192) == "write"  # partial


def test_mds_locate():
    cfg = _small_config()
    ecfs = ECFS(cfg, method="fo")
    meta = ecfs.mds.create_file(cfg.k * cfg.block_size * 2)
    block, off = ecfs.mds.locate(meta.file_id, cfg.block_size + 100, cfg.k)
    assert block == BlockId(meta.file_id, 0, 1)
    assert off == 100
    block, _ = ecfs.mds.locate(meta.file_id, cfg.k * cfg.block_size, cfg.k)
    assert block.stripe == 1


def test_mds_bounds():
    ecfs = ECFS(_small_config(), method="fo")
    meta = ecfs.mds.create_file(1 << 16)
    with pytest.raises(IntegrityError):
        ecfs.mds.locate(meta.file_id, 1 << 20, 4)
    with pytest.raises(IntegrityError):
        ecfs.mds.lookup(999)


def test_mds_heartbeat_failure_detection():
    ecfs = ECFS(_small_config(), method="fo")
    failed = []
    ecfs.mds.on_failure = failed.append
    ecfs.mds.heartbeat(0, now=0.0)
    ecfs.mds.heartbeat(1, now=4.0)
    assert ecfs.mds.check_liveness(now=6.0) == [0]
    assert failed == [0]
    assert ecfs.mds.check_liveness(now=6.5) == []  # not re-reported


# ------------------------------------------------------------------ OSD
def test_osd_block_io_bounds():
    ecfs = ECFS(_small_config(), method="fo")
    osd = ecfs.osds[0]
    with pytest.raises(IntegrityError):
        list(osd.io_block(IOKind.READ, BlockId(1, 0, 0), 0, 1 << 20))


def test_osd_log_append_is_sequential():
    ecfs = ECFS(_small_config(), method="fo")
    osd = ecfs.osds[0]

    def appends():
        yield from osd.io_log_append("mylog", 4096)
        yield from osd.io_log_append("mylog", 4096)
        yield from osd.io_log_append("mylog", 4096)

    ecfs.env.run(ecfs.env.process(appends()))
    assert osd.device.counters.seq_ops == 2  # first op primes the stream


def test_osd_failure_blocks_io():
    ecfs = ECFS(_small_config(), method="fo")
    osd = ecfs.osds[0]
    osd.fail()
    with pytest.raises(IntegrityError):
        list(osd.io_log_append("log", 4096))


def test_block_addr_stable():
    ecfs = ECFS(_small_config(), method="fo")
    osd = ecfs.osds[0]
    a1 = osd.block_addr(BlockId(1, 0, 0))
    a2 = osd.block_addr(BlockId(1, 0, 1))
    assert a1 != a2
    assert osd.block_addr(BlockId(1, 0, 0)) == a1


# ----------------------------------------------------------------- ECFS
def test_config_validation():
    with pytest.raises(ConfigError):
        ClusterConfig(n_osds=8, k=6, m=4).validate()
    with pytest.raises(ConfigError):
        ClusterConfig(block_size=0).validate()
    with pytest.raises(ConfigError):
        ClusterConfig(device="tape").validate()


def test_populate_random_creates_consistent_stripes():
    ecfs = ECFS(_small_config(), method="fo")
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    assert ecfs.verify() == 2
    assert len(ecfs.known_blocks) == 2 * (4 + 2)
    assert ecfs.mds.classify(files[0], 0, 4096) == "update"


def test_populate_zeros_fast_path():
    ecfs = ECFS(_small_config(), method="fo")
    ecfs.populate(n_files=1, stripes_per_file=1, fill="zeros")
    assert ecfs.verify() == 1


def test_unknown_method_rejected():
    with pytest.raises(KeyError):
        ECFS(_small_config(), method="nope")


def test_normal_write_path_via_client():
    """Full-stripe write: client encodes, blocks land on the right OSDs."""
    cfg = _small_config()
    ecfs = ECFS(cfg, method="fo")
    meta = ecfs.mds.create_file(cfg.k * cfg.block_size)
    (client,) = ecfs.add_clients(1)
    ecfs.known_blocks.update(
        BlockId(meta.file_id, 0, i) for i in range(cfg.k + cfg.m)
    )
    ecfs.env.run(ecfs.env.process(client.write_stripe(meta.file_id, 0)))
    assert ecfs.verify() == 1
    assert ecfs.env.now > 0  # encoding + transfers + writes took time


def test_read_returns_committed_data():
    cfg = _small_config()
    ecfs = ECFS(cfg, method="tsue")
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)

    def flow():
        yield ecfs.env.process(client.update(files[0], 4096, 4096))
        data = yield ecfs.env.process(client.read(files[0], 4096, 4096))
        return data

    data = ecfs.env.run(ecfs.env.process(flow()))
    expected = ecfs.oracle.expected(BlockId(files[0], 0, 0))[4096:8192]
    assert np.array_equal(data, expected)
