"""Bulk drain plane equivalence tier: vectorized recycle == per-extent oracle.

The bulk drain plane (:mod:`repro.sim.bulk`) batches the host-side math of
drain/recycle — packed delta gathers across whole unit queues, per-stripe
parity panels, XOR folds — while leaving the simulated event structure
untouched: precomputed arrays are consumed at exactly the yield points
where the per-extent oracle would have computed them.  Its correctness
contract is the one ``macro_batching``/``request_schedules`` set: with
``bulk_drain`` on or off, every simulation in this tree must produce
byte-identical canonical digests — same sim clock, same op counts, same
latency sums, same device counters, same network totals, same block bytes.
The per-unit/per-extent path stays in the tree as the equivalence oracle;
these tests pin the two paths together so they can never drift.

Covered here:

* all seven update methods, the ``bulk_drain x macro_batching`` 2x2 digest
  matrix + double-run stability (fast tier);
* engagement accounting: on a clean run the plane actually plans and
  consumes (else every cell would compare the oracle with itself);
* identical event *counts* across the flag matrix — the plane must never
  add or remove a simulated event;
* a fault-scenario sample across the topo-*/bg-*/slo- families, where the
  epoch/presence guards must fall back around crashes, rebalance, and
  frozen stripes without changing a single observable;
* PYTHONHASHSEED-varied subprocesses: packed plans and panel scatter must
  not lean on dict/set iteration order any more than the oracle does.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.fault.digest import cluster_digest
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.update.tsue import TSUEOptions

METHODS = ["fo", "fl", "pl", "plr", "parix", "tsue", "cord"]

#: one scenario per family (mirrors the macro-batching tier): elastic
#: topology, background maintenance pressure, and the QoS front end
SCENARIO_SAMPLE = ["topo-join-crush", "bg-scrub-under-load", "slo-qos-crash"]

#: the flag matrix: (bulk_drain, macro_batching)
MATRIX = [(True, True), (True, False), (False, True), (False, False)]


def _cfg(method: str, bulk: bool, batched: bool) -> ExperimentConfig:
    return ExperimentConfig(
        method=method,
        trace="tencloud",
        k=4,
        m=2,
        n_osds=10,
        n_clients=4,
        n_ops=150,
        block_size=1 << 16,
        log_unit_size=1 << 17,
        n_files=2,
        stripes_per_file=2,
        seed=4242,
        verify=True,
        macro_batching=batched,
        bulk_drain=bulk,
    )


def _run(method: str, bulk: bool, batched: bool):
    result = run_experiment(_cfg(method, bulk, batched), keep_cluster=True)
    return (
        cluster_digest(result.ecfs),
        result.perf["events"],
        result.extra.get("bulk_drain"),
    )


@pytest.mark.parametrize("method", METHODS)
def test_bulk_matrix_matches_oracle(method):
    """The core contract: all four cells of the flag matrix are
    byte-identical in every digested observable, and the bulk cell
    reproduces itself exactly (double-run determinism)."""
    cells = {
        (bulk, batched): _run(method, bulk, batched)
        for bulk, batched in MATRIX
    }
    baseline_digest = cells[(False, False)][0]
    for flags, (digest, _events, _stats) in cells.items():
        assert digest == baseline_digest, (
            f"{method}: digest diverged at bulk_drain="
            f"{flags[0]}, macro_batching={flags[1]}"
        )
    assert _run(method, True, True) == cells[(True, True)]
    # the plane precomputes host math only: the simulated event structure
    # (count included) must be flag-invariant, cell for cell
    assert cells[(True, True)][1] == cells[(False, True)][1], method
    assert cells[(True, False)][1] == cells[(False, False)][1], method


def test_bulk_plane_engages():
    """The plane must actually plan and consume on a clean run — an inert
    plane would make the whole matrix above compare the oracle with
    itself.  TSUE exercises the packed datalog plans and the parity
    panels; a clean steady run takes zero fallbacks."""
    _digest, _events, stats = _run("tsue", True, True)
    assert stats is not None
    assert stats["planned_units"] > 0, stats
    assert stats["consumed"] > 0, stats
    assert stats["parity_panels"] > 0, stats
    assert stats["fallbacks"] == 0, stats


def test_bulk_plane_disarmed_when_off():
    """With ``bulk_drain`` off the engine is not armed at all — the run
    reports no bulk stats and takes the oracle path everywhere."""
    result = run_experiment(_cfg("tsue", False, True), keep_cluster=True)
    assert result.ecfs.bulk is None
    assert "bulk_drain" not in result.extra


@pytest.mark.parametrize("name", SCENARIO_SAMPLE)
def test_scenario_bulk_matches_oracle(name):
    """Fault scenarios — crashes, rebalance, QoS deadlines — agree between
    the bulk and oracle paths: the epoch/presence guards and the
    healthy-cluster planning gate must hide the fast path from every
    observable."""

    def run(bulk: bool):
        spec = dataclasses.replace(get_scenario(name), bulk_drain=bulk)
        result = ScenarioRunner(spec).run(seed=7)
        return (
            result.digest,
            result.sim_time,
            result.ops,
            result.failures,
            result.slo,
            result.background,
        )

    vectorized, oracle = run(True), run(False)
    assert vectorized[0] == oracle[0], f"{name}: digest diverged"
    assert vectorized[1:] == oracle[1:], f"{name}: scenario read-outs diverged"


@pytest.mark.parametrize("step", ["Baseline", "O1", "O3"])
def test_tsue_breakdown_options_bulk_matches_oracle(step):
    """Feature-ladder option sets change the plan *shape* the bulk plane
    sees — fig. 7 Baseline keeps unmerged RawKey records, so one unit can
    hold overlapping extents of the same block that apply in append order
    (a case ``note_block_write``'s own-plan exemption cannot catch; the
    planner must leave such extents to the oracle).  Pin digest equality
    across the flag pair for unmerged (Baseline), datalog-merged (O1),
    and pooled (O3) shapes."""
    opts = TSUEOptions.breakdown()[step]

    def run(bulk: bool):
        cfg = dataclasses.replace(
            _cfg("tsue", bulk, True), method_options={"options": opts}
        )
        result = run_experiment(cfg, keep_cluster=True)
        return cluster_digest(result.ecfs), result.perf["events"]

    vectorized, oracle = run(True), run(False)
    assert vectorized[0] == oracle[0], f"{step}: digest diverged"
    assert vectorized[1] == oracle[1], f"{step}: event count diverged"


_HASHSEED_SNIPPET = """
import dataclasses
from repro.fault.digest import cluster_digest
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.harness.runner import ExperimentConfig, run_experiment
for bulk in (True, False):
    cfg = ExperimentConfig(
        method="tsue", trace="tencloud", k=4, m=2, n_osds=10, n_clients=4,
        n_ops=150, block_size=1 << 16, log_unit_size=1 << 17, n_files=2,
        stripes_per_file=2, seed=4242, verify=True,
        bulk_drain=bulk,
    )
    print(bulk, cluster_digest(run_experiment(cfg, keep_cluster=True).ecfs))
spec = dataclasses.replace(get_scenario("slo-qos-crash"), bulk_drain=True)
print(ScenarioRunner(spec).run(seed=7).digest)
"""


def test_bulk_digest_stable_across_hashseeds():
    """Bulk-plane digests must not depend on PYTHONHASHSEED: two fresh
    interpreters with different hash seeds agree byte-for-byte (packed
    plan dicts and panel scatter keep no set- or dict-ordered state on
    timing paths)."""
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def run(hashseed: str) -> str:
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    assert run("1") == run("424242")
