"""Front-end pipeline: admission, retry, hedging, QoS scheduling, SLOs.

Unit tests for the policy pieces (token bucket, backoff, budget,
percentile/window math), integration tests for the dispatcher on a live
cluster (priority order, shedding, retry-heals-crash, hedge-dodges-
partition), and the determinism battery the ISSUE demands: retry/hedge
outcomes digest-stable across in-process reruns, the sweep process pool,
and PYTHONHASHSEED-varied subprocesses.
"""

import os
import subprocess
import sys

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.ecfs import ECFS
from repro.common.errors import (
    DecodeError,
    IntegrityError,
    UnavailableError,
    is_retryable,
)
from repro.common.units import KiB
from repro.frontend import (
    AdmissionConfig,
    AdmissionController,
    ExponentialBackoff,
    FrontEnd,
    NoRetry,
    RetryBudget,
    TokenBucket,
)
from repro.frontend.request import Request, RequestResult
from repro.metrics.collector import MetricsCollector


def _small_cluster(seed: int = 7, **kwargs) -> ECFS:
    cfg = ClusterConfig(
        n_osds=12,
        k=4,
        m=2,
        block_size=64 * KiB,
        log_unit_size=128 * KiB,
        seed=seed,
        **kwargs,
    )
    ecfs = ECFS(cfg, method="tsue")
    ecfs.populate(2, 3, fill="random")
    return ecfs


# ------------------------------------------------------------------ policy
def test_token_bucket_refill_and_deny():
    bucket = TokenBucket(rate=10.0, burst=2.0)
    assert bucket.take(0.0) and bucket.take(0.0)
    assert not bucket.take(0.0)  # burst exhausted
    assert bucket.take(0.1)  # 1 token refilled
    assert bucket.level(10.0) == pytest.approx(2.0)  # capped at burst


def test_admission_graduated_depth_bounds():
    cfg = AdmissionConfig(max_queued=90)
    assert cfg.depth_bound("gold") == 90
    assert cfg.depth_bound("silver") == 60
    assert cfg.depth_bound("bronze") == 30
    ctl = AdmissionController(cfg)
    # bronze sheds at a backlog gold rides through
    assert ctl.admit("a", "bronze", 0.0, queued=45) is not None
    assert ctl.admit("a", "gold", 0.0, queued=45) is None
    assert ctl.shed_depth == 1


def test_exponential_backoff_schedule():
    policy = ExponentialBackoff(base=0.002, factor=2.0, cap=0.05, max_retries=4)
    assert [policy.delay(i) for i in (1, 2, 3, 4)] == [0.002, 0.004, 0.008, 0.016]
    assert policy.delay(5) is None
    assert NoRetry().delay(1) is None


def test_retry_budget_earn_and_deny():
    budget = RetryBudget(ratio=0.5, initial=1.0)
    assert budget.take()
    assert not budget.take()  # initial spent
    for _ in range(2):
        budget.earn()  # 2 completions x 0.5 = 1 token
    assert budget.take()
    assert budget.spent == 2 and budget.denied == 1


def test_error_taxonomy():
    assert is_retryable(UnavailableError("down"))
    assert is_retryable(DecodeError("too few"))
    assert not is_retryable(IntegrityError("torn"))
    # existing fault-tolerance paths still catch the subclass
    assert isinstance(UnavailableError("down"), IntegrityError)


def test_request_validation():
    with pytest.raises(ValueError):
        Request(1, "t", "platinum", "read", 1, 0, 4096, 1.0)
    with pytest.raises(ValueError):
        Request(1, "t", "gold", "delete", 1, 0, 4096, 1.0)
    result = RequestResult(status="ok", latency=0.5)
    assert result.met_deadline(1.0) and not result.met_deadline(0.1)


# ----------------------------------------------------------- metric helpers
def test_percentile_stats_labels_and_values():
    stats = MetricsCollector.percentile_stats(list(range(1, 1001)))
    assert stats["p50"] == pytest.approx(500.5)
    assert stats["p99"] > stats["p50"]
    assert stats["p999"] > stats["p99"]
    assert MetricsCollector.percentile_stats([]) == {
        "p50": 0.0, "p99": 0.0, "p999": 0.0
    }


def test_windowed_binning():
    times = [0.0, 0.01, 0.06, 0.11, 0.19]
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    centers, bins = MetricsCollector.windowed(times, vals, 0.05)
    assert len(centers) == len(bins) == 4
    assert list(bins[0]) == [1.0, 2.0]
    assert list(bins[1]) == [3.0]
    assert list(bins[3]) == [5.0]


# ------------------------------------------------------------- integration
def test_frontend_serves_and_records_slo():
    ecfs = _small_cluster()
    fe = FrontEnd(ecfs)
    fe.register_tenant("alpha", "gold")
    fe.register_tenant("beta", "bronze")
    events = []
    for i in range(10):
        events.append(fe.submit("update", "alpha", 1, i * 4096, 4096))
        events.append(fe.submit("read", "beta", 2, i * 4096, 4096))
    ecfs.env.run(ecfs.env.all_of(events))
    assert all(ev.value.ok for ev in events)
    summary = fe.slo.summary()
    assert set(summary) == {"alpha/gold", "beta/bronze"}
    assert summary["alpha/gold"]["availability"] == 1.0
    assert summary["alpha/gold"]["p99"] > 0
    # verify the cluster still decodes after pipeline traffic
    ecfs.drain()
    assert ecfs.verify() > 0


def test_frontend_strict_priority_order():
    """With one dispatch slot, a gold arrival enqueued AFTER a pile of
    bronze work still dispatches before it."""
    ecfs = _small_cluster()
    fe = FrontEnd(ecfs, max_inflight=1, hedge_delay=None)
    fe.register_tenant("scavenger", "bronze")
    fe.register_tenant("premium", "gold")
    order = []
    events = []
    for i in range(4):
        ev = fe.submit("read", "scavenger", 1, i * 4096, 4096)
        ev.callbacks.append(lambda _e, i=i: order.append(f"b{i}"))
        events.append(ev)
    ev = fe.submit("read", "premium", 2, 0, 4096)
    ev.callbacks.append(lambda _e: order.append("gold"))
    events.append(ev)
    ecfs.env.run(ecfs.env.all_of(events))
    # b0 was already in flight when gold arrived; gold preempts b1..b3
    assert order.index("gold") <= 1


def test_frontend_sheds_over_rate():
    ecfs = _small_cluster()
    fe = FrontEnd(ecfs, admission=AdmissionConfig(rate=10.0, burst=2.0))
    fe.register_tenant("flood", "bronze")
    events = [fe.submit("read", "flood", 1, i * 4096, 4096) for i in range(8)]
    ecfs.env.run(ecfs.env.all_of(events))
    shed = [ev.value for ev in events if ev.value.status == "shed"]
    assert len(shed) == 6  # burst of 2 admitted at t=0, rest shed
    assert fe.admission.shed_rate == 6


def test_retry_heals_transient_outage():
    """An update lands on a bounced (down-then-back) node: the first
    attempt fails UnavailableError, backoff retries succeed."""
    ecfs = _small_cluster()
    fe = FrontEnd(ecfs, hedge_delay=None)
    fe.register_tenant("t", "bronze", deadline=2.0)
    victim_bid = next(b for b in sorted(ecfs.known_blocks) if b.idx == 0)
    victim = ecfs.osd_hosting(victim_bid)
    victim.fail()  # transient: contents intact, no MDS declaration (a bounce)

    def heal():
        yield ecfs.env.timeout(0.004)
        ecfs.restart_osd(victim.idx)

    ecfs.env.process(heal())
    offset = victim_bid.stripe * ecfs.rs.k * ecfs.config.block_size
    ev = fe.submit("update", "t", victim_bid.file_id, offset, 4096)
    ecfs.env.run(ev)
    result = ev.value
    assert result.ok and result.retries > 0
    assert fe.stats()["retries"] > 0


def test_hedged_read_dodges_partition():
    ecfs = _small_cluster()
    fe = FrontEnd(ecfs, hedge_delay=0.005)
    fe.register_tenant("t", "silver", deadline=1.0)
    bid = next(b for b in sorted(ecfs.known_blocks) if b.idx == 0)
    home = ecfs.osd_hosting(bid)
    ecfs.net.partition((home.name,))

    def heal():
        yield ecfs.env.timeout(0.5)
        ecfs.net.heal()

    ecfs.env.process(heal())
    offset = bid.stripe * ecfs.rs.k * ecfs.config.block_size
    ev = fe.submit("read", "t", bid.file_id, offset, 4096)
    ecfs.env.run(ev)
    result = ev.value
    assert result.ok and result.hedged and result.hedge_won
    assert result.latency < 0.1  # finished well before the 0.5s heal
    assert fe.counters["hedge_wins"] == 1
    # wait the abandoned primary leg out so nothing dangles
    ecfs.env.run(ecfs.env.process(fe.quiesce()))


def test_quiesce_waits_out_stragglers():
    """A deadline-abandoned leg keeps running; quiesce must outwait it."""
    ecfs = _small_cluster()
    fe = FrontEnd(ecfs, hedge_delay=None)
    fe.register_tenant("t", "gold", deadline=0.01)
    bid = next(b for b in sorted(ecfs.known_blocks) if b.idx == 0)
    home = ecfs.osd_hosting(bid)
    ecfs.net.partition((home.name,))

    def heal():
        yield ecfs.env.timeout(0.2)
        ecfs.net.heal()

    ecfs.env.process(heal())
    offset = bid.stripe * ecfs.rs.k * ecfs.config.block_size
    ev = fe.submit("update", "t", bid.file_id, offset, 4096)
    ecfs.env.run(ev)
    assert ev.value.status == "deadline"
    fe.close()
    ecfs.env.run(ecfs.env.process(fe.quiesce()))
    # the straggler update landed after the heal: the cluster verifies
    ecfs.drain()
    assert ecfs.verify() > 0


# ------------------------------------------------------------- determinism
@pytest.mark.parametrize("name", ["slo-qos-crash", "slo-qos-partition"])
def test_slo_scenario_digest_determinism(name):
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario

    a = ScenarioRunner(get_scenario(name)).run(seed=11)
    b = ScenarioRunner(get_scenario(name)).run(seed=11)
    assert a.digest == b.digest
    assert a.slo == b.slo and a.slo_series == b.slo_series
    c = ScenarioRunner(get_scenario(name)).run(seed=12)
    assert c.digest != a.digest


def test_slo_scenario_digest_stable_across_pool(tmp_path):
    """Serial in-process run == process-pool run (retry/hedge decisions
    must not depend on process state)."""
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario
    from repro.harness.sweep import SweepExecutor

    serial = ScenarioRunner(get_scenario("slo-qos-crash")).run(seed=7)
    pooled = SweepExecutor(workers=2).run_scenarios(
        ["slo-qos-crash", "slo-qos-partition"], [7]
    )
    assert pooled[0].digest == serial.digest
    assert pooled[0].slo == serial.slo


_HASHSEED_SNIPPET = """
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
r = ScenarioRunner(get_scenario("slo-qos-partition")).run(seed=7)
print(r.digest)
print(sorted(r.slo.items()))
"""


def test_slo_digest_stable_across_hashseeds():
    """Retry/hedge/SLO outcomes must not depend on PYTHONHASHSEED: two
    fresh interpreters with different hash seeds agree byte-for-byte."""
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def run(hashseed: str) -> str:
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    assert run("1") == run("424242")
