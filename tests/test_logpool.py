"""Unit tests for the FIFO log pool: rotation, backpressure, read cache."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.intervals import MergePolicy
from repro.core.logpool import LogPool
from repro.core.logunit import LogUnitState
from repro.sim import Environment


def _pool(env, unit_size=1000, min_units=1, max_units=2, merge=True):
    return LogPool(
        env, "p0", unit_size, MergePolicy.OVERWRITE,
        min_units=min_units, max_units=max_units, merge=merge,
    )


def _bytes(n, fill=1):
    return np.full(n, fill, dtype=np.uint8)


def _run_append(env, pool, block, offset, data):
    proc = env.process(pool.append(block, offset, data))
    env.run(proc)


def test_append_fills_active_unit():
    env = Environment()
    pool = _pool(env)
    _run_append(env, pool, "blk", 0, _bytes(400))
    assert pool.active.used == 400
    assert pool.appends == 1
    assert pool.append_bytes == 400


def test_rotation_seals_full_unit():
    env = Environment()
    pool = _pool(env)
    _run_append(env, pool, "blk", 0, _bytes(800))
    _run_append(env, pool, "blk", 800, _bytes(800))  # doesn't fit: rotate
    assert pool.n_units == 2
    assert len(pool.recyclable) == 1
    sealed = pool.recyclable.items[0]
    assert sealed.state is LogUnitState.RECYCLABLE


def test_record_larger_than_unit_rejected():
    env = Environment()
    pool = _pool(env, unit_size=100)
    with pytest.raises(ConfigError):
        env.run(env.process(pool.append("blk", 0, _bytes(200))))


def test_quota_backpressure_stalls_appends():
    env = Environment()
    pool = _pool(env, unit_size=1000, max_units=1)
    done = []

    def appender():
        yield from pool.append("blk", 0, _bytes(900))
        yield from pool.append("blk", 1000, _bytes(900))  # must stall
        done.append(env.now)

    def recycler():
        unit = yield pool.recyclable.get()
        unit.start_recycle(env.now)
        yield env.timeout(5.0)  # slow recycle
        pool.unit_recycled(unit)

    env.process(appender())
    env.process(recycler())
    env.run()
    assert done == [pytest.approx(5.0)]
    assert pool.stalls == 1
    assert pool.stall_time == pytest.approx(5.0)


def test_recycled_unit_is_reused_fifo():
    env = Environment()
    pool = _pool(env, unit_size=100, max_units=2)

    def flow():
        yield from pool.append("a", 0, _bytes(90))
        yield from pool.append("b", 0, _bytes(90))  # rotates; unit0 sealed
        unit = yield pool.recyclable.get()
        unit.start_recycle(env.now)
        pool.unit_recycled(unit)
        yield from pool.append("c", 0, _bytes(90))  # rotates; reuses unit0
        assert pool.n_units == 2  # no third unit allocated

    env.run(env.process(flow()))


def test_read_cache_hits_newest_first():
    env = Environment()
    pool = _pool(env, unit_size=100, max_units=4)
    _run_append(env, pool, "blk", 0, _bytes(90, fill=1))
    _run_append(env, pool, "blk", 0, _bytes(90, fill=2))  # new unit
    hit = pool.lookup("blk", 0, 90)
    assert hit is not None and hit[0] == 2
    assert pool.cache_hits == 1


def test_read_cache_includes_recycled_units():
    env = Environment()
    pool = _pool(env, unit_size=100, max_units=2)

    def flow():
        yield from pool.append("blk", 0, _bytes(90, fill=7))
        yield from pool.append("other", 0, _bytes(90))  # seals unit 0
        unit = yield pool.recyclable.get()
        unit.start_recycle(env.now)
        pool.unit_recycled(unit)
        # unit 0 is RECYCLED but retains its index: still a cache
        hit = pool.lookup("blk", 0, 90)
        assert hit is not None and hit[0] == 7

    env.run(env.process(flow()))


def test_lookup_miss_counts():
    env = Environment()
    pool = _pool(env)
    assert pool.lookup("nope", 0, 10) is None
    assert pool.cache_misses == 1


def test_overlay_applies_log_bytes():
    env = Environment()
    pool = _pool(env)
    _run_append(env, pool, "blk", 10, _bytes(5, fill=9))
    buf = np.zeros(20, dtype=np.uint8)
    pool.overlay("blk", 0, 20, buf)
    assert (buf[10:15] == 9).all()
    assert (buf[:10] == 0).all()


def test_memory_and_backlog_accounting():
    env = Environment()
    pool = _pool(env, unit_size=100, max_units=3)
    _run_append(env, pool, "a", 0, _bytes(90))
    _run_append(env, pool, "b", 0, _bytes(90))
    _run_append(env, pool, "c", 0, _bytes(90))
    assert pool.n_units == 3
    assert pool.memory_bytes == 300
    assert pool.backlog == 2
    assert pool.peak_units == 3


def test_trim_drops_recycled_above_min():
    env = Environment()
    pool = _pool(env, unit_size=100, min_units=1, max_units=4)

    def flow():
        for i, tag in enumerate("abc"):
            yield from pool.append(tag, 0, _bytes(90))
        for _ in range(2):
            unit = yield pool.recyclable.get()
            unit.start_recycle(env.now)
            pool.unit_recycled(unit)
        freed = pool.trim()
        assert freed == 2
        assert pool.n_units == 1

    env.run(env.process(flow()))


def test_residence_recorded_on_recycle():
    env = Environment()
    pool = _pool(env, unit_size=100)

    def flow():
        yield from pool.append("a", 0, _bytes(90))
        yield env.timeout(2.0)
        yield from pool.append("b", 0, _bytes(90))  # seal at t=2
        unit = yield pool.recyclable.get()
        unit.start_recycle(env.now)
        yield env.timeout(1.0)
        pool.unit_recycled(unit)

    env.run(env.process(flow()))
    assert len(pool.residence) == 1
    buffer_s, recycle_s = pool.residence[0]
    assert buffer_s == pytest.approx(2.0)
    assert recycle_s == pytest.approx(1.0)


def test_bad_quota_rejected():
    env = Environment()
    with pytest.raises(ConfigError):
        _pool(env, min_units=3, max_units=2)
