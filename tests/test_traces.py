"""Tests for trace generation: records, locality, statistical fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    LocalityModel,
    MSR_VOLUMES,
    TraceRecord,
    alicloud_spec,
    generate_trace,
    msr_spec,
    tencloud_spec,
    trace_statistics,
)
from repro.traces.synthetic import SyntheticTraceSpec

_MB = 1 << 20


def test_record_validation():
    with pytest.raises(ValueError):
        TraceRecord("bogus", 1, 0, 4096)
    with pytest.raises(ValueError):
        TraceRecord("read", 1, 0, 0)
    with pytest.raises(ValueError):
        TraceRecord("read", 1, -1, 4096)


def test_spec_probabilities_must_sum_to_one():
    with pytest.raises(ValueError):
        SyntheticTraceSpec("x", 0.5, ((4096, 0.5), (8192, 0.4)))


def test_spec_sizes_must_be_4k_multiples():
    with pytest.raises(ValueError):
        SyntheticTraceSpec("x", 0.5, ((1000, 1.0),))


def test_alicloud_statistics_match_published():
    spec = alicloud_spec()
    trace = generate_trace(spec, 8000, [1, 2], 64 * _MB, seed=0)
    stats = trace_statistics(trace)
    assert stats["update_ratio"] == pytest.approx(0.75, abs=0.03)
    assert stats["p_4k"] == pytest.approx(0.46, abs=0.03)
    assert stats["p_le_16k"] == pytest.approx(0.60, abs=0.03)


def test_tencloud_statistics_match_published():
    spec = tencloud_spec()
    trace = generate_trace(spec, 8000, [1], 64 * _MB, seed=1)
    stats = trace_statistics(trace)
    assert stats["update_ratio"] == pytest.approx(0.69, abs=0.03)
    assert stats["p_4k"] == pytest.approx(0.69, abs=0.03)
    assert stats["p_le_16k"] == pytest.approx(0.88, abs=0.03)


def test_tencloud_locality_stronger_than_alicloud():
    """Ten-Cloud touches a much smaller fraction of its space (§2.3.3)."""
    ten = trace_statistics(
        generate_trace(tencloud_spec(), 5000, [1], 64 * _MB, seed=2)
    )
    ali = trace_statistics(
        generate_trace(alicloud_spec(), 5000, [1], 64 * _MB, seed=2)
    )
    assert ten["footprint_fraction"] < ali["footprint_fraction"]


def test_all_msr_volumes_generate():
    for vol in MSR_VOLUMES:
        spec = msr_spec(vol)
        trace = generate_trace(spec, 500, [1], 16 * _MB, seed=3)
        stats = trace_statistics(trace)
        assert stats["update_ratio"] == pytest.approx(
            MSR_VOLUMES[vol][0], abs=0.08
        )


def test_msr_unknown_volume():
    with pytest.raises(KeyError):
        msr_spec("nope")


def test_generate_requires_files():
    with pytest.raises(ValueError):
        generate_trace(alicloud_spec(), 10, [], 16 * _MB)


def test_generation_is_deterministic():
    a = generate_trace(tencloud_spec(), 200, [1, 2], 16 * _MB, seed=42)
    b = generate_trace(tencloud_spec(), 200, [1, 2], 16 * _MB, seed=42)
    assert a == b
    c = generate_trace(tencloud_spec(), 200, [1, 2], 16 * _MB, seed=43)
    assert a != c


def test_records_stay_in_bounds():
    trace = generate_trace(alicloud_spec(), 2000, [1], 8 * _MB, seed=5)
    for rec in trace:
        assert 0 <= rec.offset
        assert rec.offset + rec.size <= 8 * _MB


# ------------------------------------------------------------- locality
def test_locality_zipf_concentrates_accesses():
    hot = LocalityModel(file_bytes=64 * _MB, zipf_a=1.4, working_set=0.05, seed=0)
    cold = LocalityModel(file_bytes=64 * _MB, zipf_a=0.6, working_set=0.8, seed=0)
    assert hot.coverage_fraction(3000) < cold.coverage_fraction(3000)


def test_locality_sequential_runs():
    loc = LocalityModel(file_bytes=_MB, p_run=0.99, seed=1)
    offsets = [loc.next_offset(4096) for _ in range(50)]
    diffs = [b - a for a, b in zip(offsets, offsets[1:])]
    assert diffs.count(4096) >= 40  # almost always continues the run


def test_locality_validation():
    with pytest.raises(ValueError):
        LocalityModel(file_bytes=100)
    with pytest.raises(ValueError):
        LocalityModel(file_bytes=_MB, working_set=0)
    with pytest.raises(ValueError):
        LocalityModel(file_bytes=_MB, p_run=1.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_locality_offsets_always_valid(seed):
    loc = LocalityModel(file_bytes=4 * _MB, seed=seed)
    for size in (4096, 65536, 4 * _MB):
        off = loc.next_offset(size)
        assert 0 <= off <= 4 * _MB - size


def test_statistics_empty_trace():
    stats = trace_statistics([])
    assert stats["n_ops"] == 0
