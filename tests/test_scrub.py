"""Tests for the background stripe scrubber."""

import numpy as np

from repro.cluster import BlockId, ClusterConfig, ECFS
from repro.cluster.scrub import Scrubber
from repro.traces import TraceReplayer, generate_trace, tencloud_spec


def _cluster(method="tsue"):
    return ECFS(
        ClusterConfig(
            n_osds=10, k=4, m=2, block_size=1 << 14, log_unit_size=1 << 15, seed=71
        ),
        method=method,
    )


def test_clean_cluster_scrubs_clean():
    ecfs = _cluster()
    ecfs.populate(n_files=1, stripes_per_file=3, fill="random")
    report = ecfs.env.run(ecfs.env.process(Scrubber(ecfs).scrub()))
    assert report.clean
    assert report.stripes_checked == 3
    assert report.stripes_skipped == 0


def test_scrubber_finds_injected_corruption():
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=3, fill="random")
    pbid = BlockId(files[0], 1, 4)  # parity 0 of stripe 1
    osd = ecfs.osd_hosting(pbid)
    osd.store.xor_in(pbid, 100, np.full(8, 0xFF, dtype=np.uint8))
    report = ecfs.env.run(ecfs.env.process(Scrubber(ecfs).scrub()))
    assert not report.clean
    assert (files[0], 1, 0) in report.mismatches


def test_scrubber_skips_stripes_with_log_debt():
    ecfs = _cluster("pl")
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    (client,) = ecfs.add_clients(1)
    ecfs.env.run(ecfs.env.process(client.update(files[0], 0, 4096)))
    # PL parked the parity delta in its log: the stripe legitimately lags
    report = ecfs.env.run(ecfs.env.process(Scrubber(ecfs).scrub()))
    assert report.stripes_skipped >= 1
    assert report.clean  # nothing *wrongly* inconsistent was reported


def test_scrubber_after_tsue_drain_checks_everything():
    ecfs = _cluster()
    files = ecfs.populate(n_files=2, stripes_per_file=2, fill="random")
    trace = generate_trace(
        tencloud_spec(), 100, files, ecfs.mds.lookup(files[0]).size, seed=4
    )
    TraceReplayer(ecfs, trace).run(n_clients=4)
    ecfs.drain()
    report = ecfs.env.run(ecfs.env.process(Scrubber(ecfs).scrub()))
    assert report.clean
    assert report.stripes_checked == 4


def test_scrubber_bounded_pass():
    ecfs = _cluster()
    ecfs.populate(n_files=1, stripes_per_file=5, fill="random")
    report = ecfs.env.run(
        ecfs.env.process(Scrubber(ecfs, stripes_per_pass=2).scrub())
    )
    assert report.stripes_checked == 2


def test_scrubber_charges_device_time():
    ecfs = _cluster()
    ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    t0 = ecfs.env.now
    ecfs.env.run(ecfs.env.process(Scrubber(ecfs).scrub()))
    assert ecfs.env.now > t0
    reads = sum(o.device.counters.reads for o in ecfs.osds)
    assert reads == 2 * (4 + 2)  # every block of every stripe read once
