"""Event-based stripe-quiescence waiters: exact wakeups, FIFO fairness."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.ecfs import ECFS
from repro.common.refcount import RefCounter


def _ecfs() -> ECFS:
    return ECFS(
        ClusterConfig(
            n_osds=8, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17
        ),
        method="fo",
    )


# ---------------------------------------------------------------- RefCounter


def test_refcounter_nesting_and_zero_hook():
    fired = []
    rc = RefCounter(on_zero=fired.append)
    assert rc.incr("k") == 1
    assert rc.incr("k") == 2
    assert "k" in rc and bool(rc) and len(rc) == 1
    assert rc.decr("k") == 1
    assert fired == []  # still held
    assert rc.decr("k") == 0
    assert fired == ["k"]
    assert "k" not in rc and not rc


def test_refcounter_overrelease_clamps():
    fired = []
    rc = RefCounter(on_zero=fired.append)
    assert rc.decr("k") == 0
    assert fired == ["k"]
    assert rc.count("k") == 0


def test_refcounter_iteration_matches_held_keys():
    rc = RefCounter()
    rc.incr(("a", 1))
    rc.incr(("b", 2), n=3)
    assert set(rc) == {("a", 1), ("b", 2)}


# ------------------------------------------------------------------- waiters


def test_thaw_waiter_wakes_exactly_at_last_release():
    """Two nested freezes: the waiter must sleep through the first thaw and
    wake exactly when the second (last) one releases — no 1e-4 poll grid."""
    ecfs = _ecfs()
    env = ecfs.env
    woke = []

    ecfs.freeze_stripe(0, 0)
    ecfs.freeze_stripe(0, 0)

    def waiter():
        yield from ecfs.wait_stripe_thaw(0, 0)
        woke.append(env.now)

    def thawer():
        yield env.timeout(1.0)
        ecfs.thaw_stripe(0, 0)  # one hold left: waiter must not wake
        yield env.timeout(1.5)
        ecfs.thaw_stripe(0, 0)  # last hold releases at t=2.5

    env.process(waiter())
    env.process(thawer())
    env.run()
    assert woke == [2.5]


def test_thaw_waiters_wake_in_fifo_order():
    ecfs = _ecfs()
    env = ecfs.env
    order = []

    ecfs.freeze_stripe(0, 0)

    def waiter(tag):
        yield from ecfs.wait_stripe_thaw(0, 0)
        order.append(tag)

    for tag in "abc":
        env.process(waiter(tag))

    def thawer():
        yield env.timeout(1.0)
        ecfs.thaw_stripe(0, 0)

    env.process(thawer())
    env.run()
    assert order == ["a", "b", "c"]


def test_inflight_release_wakes_stripe_waiter():
    from repro.cluster.ids import BlockId

    ecfs = _ecfs()
    env = ecfs.env
    woke = []
    block = BlockId(0, 0, 0)
    ecfs.note_update_begin(block)

    def waiter():
        while ecfs.inflight_updates(0, 0):
            yield ecfs.stripe_released(0, 0)
        woke.append(env.now)

    def releaser():
        yield env.timeout(0.75)
        ecfs.note_update_end(block)

    env.process(waiter())
    env.process(releaser())
    env.run()
    assert woke == [0.75]


def test_settlement_event_woken_by_notify():
    ecfs = _ecfs()
    env = ecfs.env
    woke = []

    def waiter():
        yield ecfs.settlement_event()
        woke.append(env.now)

    def notifier():
        yield env.timeout(2.0)
        ecfs.notify_settlement()

    env.process(waiter())
    env.process(notifier())
    env.run()
    assert woke == [2.0]


def test_no_spurious_wakeups_while_frozen():
    """A waiter on stripe A must not be woken by stripe B's thaw (per-key
    waiter lists), only by a cluster-wide settlement notification."""
    ecfs = _ecfs()
    env = ecfs.env
    wakes = []

    ecfs.freeze_stripe(0, 0)
    ecfs.freeze_stripe(0, 1)

    def waiter():
        while ecfs.stripe_frozen(0, 0):
            ev = ecfs.stripe_released(0, 0)
            yield ev
            wakes.append(env.now)

    def other_thaw():
        yield env.timeout(1.0)
        ecfs.thaw_stripe(0, 1)  # other stripe: no wake for (0, 0)
        yield env.timeout(1.0)
        ecfs.thaw_stripe(0, 0)

    env.process(waiter())
    env.process(other_thaw())
    env.run()
    assert wakes == [pytest.approx(2.0)]
