"""Unit tests for Resource / PriorityResource / Store."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store


def test_resource_capacity_one_serializes():
    env = Environment()
    log = []

    def worker(res, tag, hold):
        with res.request() as req:
            yield req
            log.append((tag, "in", env.now))
            yield env.timeout(hold)
        log.append((tag, "out", env.now))

    res = Resource(env, capacity=1)
    env.process(worker(res, "a", 2))
    env.process(worker(res, "b", 1))
    env.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 2.0),
        ("b", "in", 2.0),
        ("b", "out", 3.0),
    ]


def test_resource_capacity_two_overlaps():
    env = Environment()
    done = []

    def worker(res):
        with res.request() as req:
            yield req
            yield env.timeout(1)
        done.append(env.now)

    res = Resource(env, capacity=2)
    for _ in range(4):
        env.process(worker(res))
    env.run()
    assert done == [1.0, 1.0, 2.0, 2.0]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_orders_queue():
    env = Environment()
    order = []

    def holder(res):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def worker(res, tag, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)

    res = PriorityResource(env, capacity=1)
    env.process(holder(res))
    env.process(worker(res, "bg", 10, 1))
    env.process(worker(res, "fg", 0, 2))  # arrives later, higher priority
    env.run()
    assert order == ["fg", "bg"]


def test_request_cancel_releases_queue_slot():
    env = Environment()
    got = []

    def holder(res):
        with res.request() as req:
            yield req
            yield env.timeout(3)

    def canceller(res):
        yield env.timeout(1)
        req = res.request()
        req.cancel()

    def worker(res):
        yield env.timeout(2)
        with res.request() as req:
            yield req
            got.append(env.now)

    res = Resource(env, capacity=1)
    env.process(holder(res))
    env.process(canceller(res))
    env.process(worker(res))
    env.run()
    assert got == [3.0]


def test_store_fifo_order():
    env = Environment()
    got = []

    def producer(store):
        for i in range(3):
            yield env.timeout(1)
            store.put(i)

    def consumer(store):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    store = Store(env)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_get_blocks_until_put():
    env = Environment()
    got = []

    def consumer(store):
        item = yield store.get()
        got.append((item, env.now))

    def producer(store):
        yield env.timeout(4)
        store.put("x")

    store = Store(env)
    env.process(consumer(store))
    env.process(producer(store))
    env.run()
    assert got == [("x", 4.0)]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    events = []

    def producer(store):
        for i in range(3):
            yield store.put(i)
            events.append(("put", i, env.now))

    def consumer(store):
        yield env.timeout(2)
        item = yield store.get()
        events.append(("got", item, env.now))

    store = Store(env, capacity=2)
    env.process(producer(store))
    env.process(consumer(store))
    env.run()
    assert ("put", 2, 2.0) in events  # third put waited for the get


def test_store_try_get():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put(7)
    env.run()
    assert store.try_get() == 7


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)
