"""Table-driven request-schedule equivalence tier: compiled == generator.

The schedule engine (:mod:`repro.sim.schedule`) compiles an uncontended
steady-state write into a flat slot table executed by one driver object
instead of a 4-6-frame generator tower.  Its correctness contract is the
same one macro-op batching set: with ``request_schedules`` on or off,
every simulation in this tree must produce byte-identical canonical
digests — same sim clock, same op counts, same latency sums, same device
counters, same network totals, same block bytes.  The generator path
stays in the tree as the equivalence oracle; these tests pin the two
paths together so they can never drift.

Because the compiled slot tables reuse the batched fan-out machinery, the
engine arms only when ``macro_batching`` is also on — the full 2x2 flag
matrix is asserted byte-identical, not just the diagonal.

Covered here:

* all seven update methods, the ``request_schedules x macro_batching``
  2x2 digest matrix + double-run stability (fast tier);
* admission/bail accounting: a fault-free steady run admits every update
  (hit rate 1.0) and never bails mid-request;
* a fault-scenario sample across the topo-*/bg-*/slo- families, where
  probes must decline (or bail to the generator path) around crashes,
  rebalance, and QoS scheduling without changing a single observable;
* PYTHONHASHSEED-varied subprocesses: compiled-schedule digests must not
  lean on dict/set iteration order any more than generator ones do.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys

import pytest

from repro.fault.digest import cluster_digest
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.harness.runner import ExperimentConfig, run_experiment

METHODS = ["fo", "fl", "pl", "plr", "parix", "tsue", "cord"]

#: one scenario per family (mirrors the macro-batching tier): elastic
#: topology, background maintenance pressure, and the QoS front end
SCENARIO_SAMPLE = ["topo-join-crush", "bg-scrub-under-load", "slo-qos-crash"]

#: the flag matrix: (request_schedules, macro_batching)
MATRIX = [(True, True), (True, False), (False, True), (False, False)]


def _cfg(method: str, schedules: bool, batched: bool) -> ExperimentConfig:
    return ExperimentConfig(
        method=method,
        trace="tencloud",
        k=4,
        m=2,
        n_osds=10,
        n_clients=4,
        n_ops=150,
        block_size=1 << 16,
        log_unit_size=1 << 17,
        n_files=2,
        stripes_per_file=2,
        seed=4242,
        verify=True,
        macro_batching=batched,
        request_schedules=schedules,
    )


def _run(method: str, schedules: bool, batched: bool):
    result = run_experiment(_cfg(method, schedules, batched), keep_cluster=True)
    return (
        cluster_digest(result.ecfs),
        result.perf["events"],
        result.ecfs.schedules.stats() if result.ecfs.schedules else None,
    )


@pytest.mark.parametrize("method", METHODS)
def test_schedule_matrix_matches_oracle(method):
    """The core contract: all four cells of the flag matrix are
    byte-identical in every digested observable, and the baseline cell
    reproduces itself exactly (double-run determinism)."""
    cells = {
        (schedules, batched): _run(method, schedules, batched)
        for schedules, batched in MATRIX
    }
    baseline_digest = cells[(False, False)][0]
    for flags, (digest, _events, _stats) in cells.items():
        assert digest == baseline_digest, (
            f"{method}: digest diverged at request_schedules="
            f"{flags[0]}, macro_batching={flags[1]}"
        )
    assert _run(method, True, True) == cells[(True, True)]
    # the compiled path replaces tower resumes, not heap events: it must
    # never *add* events over the generator path it compiled away
    assert cells[(True, True)][1] <= cells[(False, True)][1], (
        f"{method}: compiled schedules scheduled more events than the "
        f"generator oracle"
    )


@pytest.mark.parametrize("method", METHODS)
def test_steady_state_admits_everything(method):
    """On a fault-free steady-state run every update dispatch compiles:
    hit rate 1.0, zero mid-request bails, and every admitted request ran
    to completion through the slot table."""
    _digest, _events, stats = _run(method, True, True)
    assert stats is not None
    assert stats["attempts"] > 0
    assert stats["hit_rate"] == 1.0, stats
    assert stats["bails"] == 0, stats
    assert stats["completed"] == stats["hits"], stats


def test_engine_inert_without_batching():
    """The slot tables reuse the batched fan-out machinery, so the engine
    must not arm when ``macro_batching`` is off — that cell runs the pure
    generator path (the 2x2 matrix above keeps it byte-identical)."""
    result = run_experiment(_cfg("tsue", True, False), keep_cluster=True)
    assert result.ecfs.schedules is None
    assert result.perf["schedule_hit_rate"] == 0.0


@pytest.mark.parametrize("name", SCENARIO_SAMPLE)
def test_scenario_schedules_match_oracle(name):
    """Fault scenarios — crashes, rebalance, QoS deadlines — agree between
    the compiled-schedule and generator paths: the admission probes and
    the mid-request bail-out must hide the fast path from every
    observable."""

    def run(schedules: bool):
        spec = dataclasses.replace(
            get_scenario(name), request_schedules=schedules
        )
        result = ScenarioRunner(spec).run(seed=7)
        return (
            result.digest,
            result.sim_time,
            result.ops,
            result.failures,
            result.slo,
            result.background,
        )

    compiled, oracle = run(True), run(False)
    assert compiled[0] == oracle[0], f"{name}: digest diverged"
    assert compiled[1:] == oracle[1:], f"{name}: scenario read-outs diverged"


_HASHSEED_SNIPPET = """
import dataclasses
from repro.fault.digest import cluster_digest
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
from repro.harness.runner import ExperimentConfig, run_experiment
for schedules in (True, False):
    cfg = ExperimentConfig(
        method="tsue", trace="tencloud", k=4, m=2, n_osds=10, n_clients=4,
        n_ops=150, block_size=1 << 16, log_unit_size=1 << 17, n_files=2,
        stripes_per_file=2, seed=4242, verify=True,
        request_schedules=schedules,
    )
    print(schedules, cluster_digest(run_experiment(cfg, keep_cluster=True).ecfs))
spec = dataclasses.replace(get_scenario("slo-qos-crash"), request_schedules=True)
print(ScenarioRunner(spec).run(seed=7).digest)
"""


def test_schedule_digest_stable_across_hashseeds():
    """Compiled-schedule digests must not depend on PYTHONHASHSEED: two
    fresh interpreters with different hash seeds agree byte-for-byte (the
    plan cache and admission probes keep no set- or dict-ordered state on
    timing paths)."""
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def run(hashseed: str) -> str:
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    assert run("1") == run("424242")
