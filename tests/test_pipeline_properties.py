"""Property-based end-to-end tests: the log-recycle equivalence oracle.

The central invariant of every update method: an arbitrary interleaving of
updates, flushed through whatever log machinery the method uses, must leave
the cluster byte-identical to applying the same updates directly — with
parity equal to a fresh encode.  Hypothesis drives randomized workloads
through the full stack.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ECFS

_BLOCK = 1 << 14  # 16 KiB blocks keep the byte work small
_K, _M = 3, 2
_FILE_BYTES = _K * _BLOCK * 2  # 2 stripes

op_strategy = st.tuples(
    st.integers(min_value=0, max_value=_FILE_BYTES - 1),  # offset
    st.integers(min_value=1, max_value=8192),  # size
    st.integers(min_value=0, max_value=3),  # client index
)


def _run_workload(method: str, ops, seed: int) -> ECFS:
    ecfs = ECFS(
        ClusterConfig(
            n_osds=6,
            k=_K,
            m=_M,
            block_size=_BLOCK,
            log_unit_size=1 << 15,
            seed=seed,
        ),
        method=method,
    )
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    clients = ecfs.add_clients(4)
    env = ecfs.env

    def one_client(idx):
        for offset, size, client_idx in ops:
            if client_idx % 4 == idx:
                yield env.process(clients[idx].update(files[0], offset, size))

    procs = [env.process(one_client(i), name=f"w{i}") for i in range(4)]
    env.run(env.all_of(procs))
    ecfs.drain()
    return ecfs


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    ops=st.lists(op_strategy, min_size=1, max_size=25),
    seed=st.integers(min_value=0, max_value=2**16),
)
@pytest.mark.parametrize("method", ["tsue", "pl", "parix"])
def test_random_interleavings_converge(method, ops, seed):
    ecfs = _run_workload(method, ops, seed)
    assert ecfs.verify() == 2
    assert ecfs.total_log_debt() == 0


def _run_sequential(method: str, ops, seed: int) -> ECFS:
    """One client issuing updates strictly in order — a deterministic
    serialization shared by every method."""
    ecfs = ECFS(
        ClusterConfig(
            n_osds=6, k=_K, m=_M, block_size=_BLOCK,
            log_unit_size=1 << 15, seed=seed,
        ),
        method=method,
    )
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    def run():
        for offset, size, _c in ops:
            yield env.process(client.update(files[0], offset, size))

    env.run(env.process(run()))
    ecfs.drain()
    return ecfs


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(op_strategy, min_size=1, max_size=15),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_tsue_equals_fo_final_state(ops, seed):
    """TSUE's two-stage pipeline and FO's direct path must agree on every
    byte of data AND parity for identical sequential inputs (payloads are
    derived deterministically from config seed + client + sequence).

    Concurrent runs may serialize racing same-range updates differently
    (both orders are valid), so this equivalence uses one client.
    """
    tsue = _run_sequential("tsue", ops, seed)
    fo = _run_sequential("fo", ops, seed)
    for block in sorted(tsue.known_blocks):
        a = tsue.osd_hosting(block).store.view(block)
        b = fo.osd_hosting(block).store.view(block)
        assert np.array_equal(np.asarray(a), np.asarray(b)), block
