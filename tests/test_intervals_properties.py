"""Property-based tests: ExtentMap vs a brute-force byte-map model.

The model is dead simple — a byte array plus a coverage bitmap — and the
merge policies reduce to elementwise assignment (OVERWRITE) or XOR on the
covered range.  Random insert sequences must leave the real ExtentMap
agreeing with the model on every query, and its structural invariants
(sorted, non-overlapping, fully coalesced extents) must always hold.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.intervals import ExtentMap, MergePolicy

SPACE = 256  # model byte-space size; small so overlaps/adjacency are common


class ByteModel:
    """Brute-force reference: byte values + coverage bitmap."""

    def __init__(self, policy: MergePolicy) -> None:
        self.policy = policy
        self.bytes = np.zeros(SPACE, dtype=np.uint8)
        self.covered = np.zeros(SPACE, dtype=bool)

    def insert(self, offset: int, data: np.ndarray) -> None:
        end = offset + data.shape[0]
        if self.policy is MergePolicy.OVERWRITE:
            self.bytes[offset:end] = data
        else:  # XOR: covered bytes accumulate, fresh bytes are set
            seg = self.bytes[offset:end]
            cov = self.covered[offset:end]
            seg[cov] ^= data[cov]
            seg[~cov] = data[~cov]
            self.bytes[offset:end] = seg
        self.covered[offset:end] = True

    def runs(self) -> list[tuple[int, int]]:
        """Maximal covered (start, end) runs — what coalescing must yield."""
        out = []
        i = 0
        while i < SPACE:
            if self.covered[i]:
                j = i
                while j < SPACE and self.covered[j]:
                    j += 1
                out.append((i, j))
                i = j
            else:
                i += 1
        return out


ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SPACE - 1),
        st.integers(min_value=1, max_value=48),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=30,
)

policies = st.sampled_from([MergePolicy.OVERWRITE, MergePolicy.XOR])


def _build(policy, ops):
    emap = ExtentMap(policy)
    model = ByteModel(policy)
    rng = np.random.default_rng(1234)
    for offset, size, fill in ops:
        size = min(size, SPACE - offset)
        if size <= 0:
            continue
        data = ((np.arange(size) + fill) % 256).astype(np.uint8)
        emap.insert(offset, data)
        model.insert(offset, data)
    return emap, model


@settings(max_examples=120, deadline=None)
@given(policies, ops_strategy)
def test_structure_sorted_nonoverlapping_coalesced(policy, ops):
    emap, model = _build(policy, ops)
    extents = list(emap.extents())
    # sorted and non-overlapping, with no two extents touching (coalesced)
    for a, b in zip(extents, extents[1:]):
        assert a.end < b.start, f"{a} and {b} overlap or should have merged"
    # extents are exactly the model's covered runs
    assert [(e.start, e.end) for e in extents] == model.runs()
    assert emap.live_bytes == int(model.covered.sum())


@settings(max_examples=120, deadline=None)
@given(policies, ops_strategy)
def test_contents_match_model(policy, ops):
    emap, model = _build(policy, ops)
    for ext in emap.extents():
        assert np.array_equal(ext.data, model.bytes[ext.start : ext.end])


@settings(max_examples=120, deadline=None)
@given(
    policies,
    ops_strategy,
    st.integers(min_value=0, max_value=SPACE - 1),
    st.integers(min_value=1, max_value=64),
)
def test_queries_match_model(policy, ops, qoff, qsize):
    qsize = min(qsize, SPACE - qoff)
    if qsize <= 0:
        return
    emap, model = _build(policy, ops)
    window = model.covered[qoff : qoff + qsize]

    assert emap.covers_any(qoff, qsize) == bool(window.any())

    got = emap.read_range(qoff, qsize)
    if window.all():
        assert got is not None
        assert np.array_equal(got, model.bytes[qoff : qoff + qsize])
    else:
        assert got is None

    # lookup succeeds iff ONE extent covers the whole range, i.e. the range
    # sits inside a single covered run
    hit = emap.lookup(qoff, qsize)
    in_single_run = any(
        s <= qoff and qoff + qsize <= e for s, e in model.runs()
    )
    if in_single_run:
        assert hit is not None
        assert np.array_equal(hit, model.bytes[qoff : qoff + qsize])
    else:
        assert hit is None

    # uncovered() gaps are exactly the bitmap's holes inside the window
    gaps = emap.uncovered(qoff, qsize)
    mask = np.ones(qsize, dtype=bool)
    for goff, gsize in gaps:
        assert qoff <= goff and goff + gsize <= qoff + qsize
        mask[goff - qoff : goff - qoff + gsize] = False
    assert np.array_equal(mask, window)


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_overwrite_newest_wins(ops):
    """With OVERWRITE, re-reading any byte returns the latest write."""
    emap, model = _build(MergePolicy.OVERWRITE, ops)
    full = emap.read_range(0, SPACE)
    if full is None:
        # not fully covered: check each covered run instead
        for s, e in model.runs():
            got = emap.read_range(s, e - s)
            assert got is not None and np.array_equal(got, model.bytes[s:e])
    else:
        assert np.array_equal(full, model.bytes)


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_records_absorbed_counts_inserts(ops):
    emap, _model = _build(MergePolicy.OVERWRITE, ops)
    effective = sum(1 for o, s, _f in ops if min(s, SPACE - o) > 0)
    assert emap.records_absorbed == effective
    assert emap.reduction_ratio >= 1.0 or len(emap) == 0
