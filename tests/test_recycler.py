"""Unit tests for the recycle planner (block-affinity lanes)."""

import numpy as np

from repro.core.intervals import MergePolicy
from repro.core.logunit import LogUnit, RawKey
from repro.core.recycler import RecyclePlanner


def _unit(merge=True):
    return LogUnit(0, 1 << 20, MergePolicy.OVERWRITE, merge=merge)


def test_plan_groups_by_block():
    unit = _unit()
    for i in range(4):
        unit.append(f"blk{i % 2}", i * 100, np.ones(10, dtype=np.uint8), now=0.0)
    planner = RecyclePlanner(n_lanes=2)
    items = planner.plan(unit)
    assert {w.block for w in items} == {"blk0", "blk1"}
    assert sum(w.raw_records for w in items) == 4


def test_same_block_same_lane():
    planner = RecyclePlanner(n_lanes=4)
    assert planner.lane_of("blk") == planner.lane_of("blk")
    # RawKey unwraps to its block for lane assignment
    assert planner.lane_of(RawKey("blk", 0)) == planner.lane_of(RawKey("blk", 99))
    assert planner.lane_of(RawKey("blk", 5)) == planner.lane_of("blk")


def test_raw_mode_preserves_append_order_within_lane():
    unit = _unit(merge=False)
    for i in range(6):
        unit.append("blk", 0, np.full(4, i, dtype=np.uint8), now=0.0)
    planner = RecyclePlanner(n_lanes=3)
    items = planner.plan(unit)
    # all records of "blk" are in one lane, ordered by seq
    lanes = list(planner.lanes(items))
    assert len(lanes) == 1
    seqs = [w.block.seq for w in lanes[0]]
    assert seqs == sorted(seqs)


def test_lanes_partition_items():
    unit = _unit()
    for i in range(10):
        unit.append(f"blk{i}", 0, np.ones(4, dtype=np.uint8), now=0.0)
    planner = RecyclePlanner(n_lanes=3)
    items = planner.plan(unit)
    lanes = list(planner.lanes(items))
    flat = [w for lane in lanes for w in lane]
    assert len(flat) == 10
    for lane in lanes:
        assert len({w.lane for w in lane}) == 1


def test_reduction_ratio():
    unit = _unit()
    for _ in range(10):
        unit.append("blk", 0, np.ones(8, dtype=np.uint8), now=0.0)
    planner = RecyclePlanner()
    planner.plan(unit)
    assert planner.reduction_ratio == 10.0


def test_work_live_bytes():
    unit = _unit()
    unit.append("blk", 0, np.ones(8, dtype=np.uint8), now=0.0)
    unit.append("blk", 8, np.ones(8, dtype=np.uint8), now=0.0)  # coalesces
    planner = RecyclePlanner()
    (work,) = planner.plan(unit)
    assert work.live_bytes == 16
    assert len(work.extents) == 1
