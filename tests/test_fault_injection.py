"""Unit tests for the fault-injection primitives (repro.fault + hooks)."""

import numpy as np
import pytest

from repro.cluster import BlockId, ClusterConfig, ECFS, HeartbeatService
from repro.cluster.scrub import Scrubber
from repro.common.errors import IntegrityError
from repro.common.units import Gbps
from repro.net.fabric import NetParams, NetworkFabric
from repro.sim import Environment
from repro.storage.ssd import SSDevice
from repro.storage.base import IOKind, IORequest


def _cluster(method="tsue", **kw):
    defaults = dict(
        n_osds=10, k=4, m=2, block_size=1 << 16, log_unit_size=1 << 17, seed=11
    )
    defaults.update(kw)
    return ECFS(ClusterConfig(**defaults), method=method)


# ------------------------------------------------------------------ network
def _timed_transfer(env, net, src, dst, nbytes):
    t0 = env.now
    proc = env.process(net.transfer(src, dst, nbytes))
    env.run(proc)
    return env.now - t0


def test_nic_degradation_slows_transfer():
    env = Environment()
    net = NetworkFabric(env, NetParams(bandwidth=Gbps(10)))
    net.add_node("a"), net.add_node("b")
    base = _timed_transfer(env, net, "a", "b", 1 << 20)
    net.degrade("a", bw_factor=0.25, extra_latency=1e-3)
    degraded = _timed_transfer(env, net, "a", "b", 1 << 20)
    assert degraded > base * 2
    net.restore("a")
    healthy = _timed_transfer(env, net, "a", "b", 1 << 20)
    assert healthy == pytest.approx(base)


def test_lossy_link_retransmits_deterministically():
    def run(seed):
        env = Environment()
        net = NetworkFabric(env, fault_seed=seed)
        net.add_node("a"), net.add_node("b")
        net.degrade("a", loss_prob=0.5)
        for _ in range(50):
            env.run(env.process(net.transfer("a", "b", 4096)))
        return net.dropped_msgs, env.now

    d1, t1 = run(3)
    d2, t2 = run(3)
    assert (d1, t1) == (d2, t2)  # same seed, same losses
    assert d1 > 0


def test_partition_blocks_until_heal():
    env = Environment()
    net = NetworkFabric(env)
    for n in ("a", "b", "c"):
        net.add_node(n)
    net.partition(("a",))
    done = []

    def xfer():
        yield from net.transfer("a", "b", 4096)
        done.append(env.now)

    env.process(xfer())
    env.run(until=1.0)
    assert not done  # cut link delivers nothing
    assert not net.reachable("a", "b")
    assert net.reachable("b", "c")
    net.heal()
    env.run(until=2.0)
    assert done and done[0] > 1.0


# ------------------------------------------------------------------ storage
def test_disk_slowdown_and_stick():
    env = Environment()
    dev = SSDevice(env, "ssd")
    req = lambda: IORequest(kind=IOKind.READ, offset=0, size=4096)  # noqa: E731

    def timed():
        t0 = env.now
        env.run(env.process(dev.submit(req())))
        return env.now - t0

    base = timed()
    dev.set_slowdown(8.0)
    assert timed() == pytest.approx(base * 8)
    dev.set_slowdown(1.0)
    dev.stick(0.5)
    stuck = timed()
    assert stuck >= 0.5
    assert dev.fault_delay_time >= 0.5
    assert timed() == pytest.approx(base)  # healthy again


def test_blockstore_corruption_flags_and_repair():
    ecfs = _cluster(method="fo")
    ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    bid = BlockId(1, 0, ecfs.rs.k)  # a parity block
    osd = ecfs.osd_hosting(bid)
    before = osd.store.read(bid)
    osd.store.corrupt(bid, 128, 1024)
    assert bid in osd.store.corrupted
    assert not np.array_equal(osd.store.read(bid), before)

    report = ecfs.env.run(ecfs.env.process(Scrubber(ecfs, repair=True).scrub()))
    assert bid in report.latent_errors
    assert bid in report.repaired
    assert bid not in osd.store.corrupted
    assert np.array_equal(osd.store.read(bid), before)
    assert ecfs.verify() == 2


def test_scrub_detects_without_repair():
    ecfs = _cluster(method="fo")
    ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    bid = BlockId(1, 0, 0)  # a data block
    ecfs.osd_hosting(bid).store.corrupt(bid, 0, 512)
    report = ecfs.env.run(ecfs.env.process(Scrubber(ecfs, repair=False).scrub()))
    assert bid in report.latent_errors
    assert not report.repaired
    assert report.mismatches  # parity no longer matches the mangled data


# ----------------------------------------------------------- bounce/restart
def test_bounce_restart_replays_buffered_parity_deltas():
    """An update lands while a parity-hosting node is down; the delta is
    buffered and replayed when the node restarts — no rebuild, no loss."""
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env
    # bounce the node hosting the first parity block (the DeltaLog home)
    victim = ecfs.osd_hosting(BlockId(files[0], 0, ecfs.rs.k))

    def flow():
        victim.fail()
        yield env.process(client.update(files[0], 0, 8192))
        yield env.timeout(0.01)
        ecfs.restart_osd(victim.idx)
        yield env.timeout(0.01)

    env.run(env.process(flow()))
    ecfs.drain()
    assert ecfs.verify() == 1


def test_restart_requeues_interrupted_recycle():
    """A node dies mid-recycle and comes back: the interrupted unit replays
    idempotently and the cluster still verifies."""
    ecfs = _cluster(log_unit_size=1 << 16)
    files = ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env

    def flow():
        for i in range(24):
            yield env.process(client.update(files[0], i * 4096, 4096))
        victim = ecfs.osd_hosting(BlockId(files[0], 0, 0))
        victim.fail()
        yield env.timeout(0.005)
        ecfs.restart_osd(victim.idx)
        yield env.timeout(0.005)

    env.run(env.process(flow()))
    ecfs.drain()
    assert ecfs.verify() == 2


# ---------------------------------------------------------------- heartbeat
def test_heartbeat_readmits_restarted_node():
    ecfs = _cluster(method="fo")
    ecfs.populate(n_files=1, stripes_per_file=1, fill="zeros")
    service = HeartbeatService(ecfs, interval=0.5, timeout=2.0)
    service.start()
    env = ecfs.env
    ecfs.osds[3].fail()
    env.run(until=5.0)
    assert [idx for idx, _ in service.detected] == [3]
    assert 3 in ecfs.mds.failed
    # the node comes back quietly (the MDS is not told directly): the
    # monitor must readmit it once heartbeats resume
    ecfs.osds[3].restart()
    ecfs.method.on_node_restarted(ecfs.osds[3])
    env.run(until=10.0)
    assert [idx for idx, _ in service.recovered] == [3]
    assert 3 not in ecfs.mds.failed


@pytest.mark.parametrize("method", ["fo", "fl", "pl", "plr", "parix", "cord", "tsue"])
def test_bounce_resyncs_parity_for_all_methods(method):
    """Every method survives a parity host bouncing mid-workload: deltas
    missed during the outage are buffered (TSUE) or repaired by the
    degraded-stripe resync on restart — no rebuild, nothing lost."""
    from repro.fault.events import BounceOSD, FaultSchedule, after_ops
    from repro.fault.runner import ScenarioRunner, ScenarioSpec

    def faults(spec):
        return FaultSchedule().when(after_ops(30), BounceOSD(osd=0, downtime=0.3))

    spec = ScenarioSpec(
        name=f"bounce-{method}", description="parity-host bounce",
        method=method, n_ops=120, build_faults=faults,
    )
    result = ScenarioRunner(spec).run(seed=31)
    assert result.stripes_verified == 4
    assert not result.recovery_reports  # no rebuild happened


def test_rebuild_refuses_corrupted_sources():
    """A latent sector error on a surviving block must not be decoded into
    a rebuilt block: the rebuild picks a clean source instead."""
    from repro.cluster import RecoveryManager

    ecfs = _cluster(method="fo", seed=13)
    ecfs.populate(n_files=1, stripes_per_file=2, fill="random")
    # corrupt a surviving data block of stripe 0, then fail another node
    victim_bid = BlockId(1, 0, 0)
    victim = ecfs.osd_hosting(victim_bid)
    corrupt_bid = BlockId(1, 0, 1)
    ecfs.osd_hosting(corrupt_bid).store.corrupt(corrupt_bid, 0, 4096)
    manager = RecoveryManager(ecfs)
    ecfs.env.run(ecfs.env.process(manager.fail_and_recover(victim.idx)))
    # the rebuilt blocks are byte-correct despite the corrupted neighbour
    import numpy as np

    for block, new_home in ecfs.placement.remapped.items():
        if block.idx < ecfs.rs.k:
            got = ecfs.osds[new_home].store.view(block)
            assert np.array_equal(got, ecfs.oracle.expected(block))


def test_mid_update_crash_clean_failure_semantics():
    """An update interrupted by its primary's death errors without touching
    the oracle (no phantom acked bytes)."""
    ecfs = _cluster()
    files = ecfs.populate(n_files=1, stripes_per_file=1, fill="random")
    (client,) = ecfs.add_clients(1)
    env = ecfs.env
    block, _ = ecfs.mds.locate(files[0], 0, ecfs.rs.k)
    applied_before = ecfs.oracle.applied_updates
    ecfs.crash_osd(ecfs.osd_hosting(block).idx)

    def flow():
        yield env.process(client.update(files[0], 0, 4096))

    with pytest.raises(IntegrityError):
        env.run(env.process(flow()))
    assert ecfs.oracle.applied_updates == applied_before
