"""Unified background-work scheduler: arbiter, lanes, governor, and the
bg-* scenario battery.

Covers the ISSUE's acceptance criteria directly:

* weighted-fair arbitration + strict foreground subordination (with the
  aging bound that guarantees starvation freedom),
* end-to-end priority lanes (deadline demotion through the whole process
  tree) and abandoned-read-leg cancellation,
* the governor contrast: foreground p99 strictly better with the governor
  on than off in the maintenance-storm scenario, every stream drained,
* determinism: in-process double-run, SweepExecutor pool vs serial, and
  PYTHONHASHSEED-varied subprocesses,
* a starvation-freedom property: every admitted background stream makes
  progress under sustained foreground load,
* the recycle-watermark config move (PL) with its deprecation shim.
"""

import os
import subprocess
import sys

import pytest

from repro.background import (
    BackgroundConfig,
    BackgroundScheduler,
    MoveOp,
    RecycleOp,
    RepairOp,
    ScrubOp,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.ecfs import ECFS
from repro.common.units import KiB, MiB
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import SCENARIOS, get_scenario
from repro.sim import Environment, Lane
from repro.storage.base import IOKind, IOPriority


def _bg_cluster(seed: int = 7, *, bg: BackgroundConfig | None = None, **kwargs) -> ECFS:
    cfg = ClusterConfig(
        n_osds=12,
        k=4,
        m=2,
        block_size=64 * KiB,
        log_unit_size=128 * KiB,
        background=bg if bg is not None else BackgroundConfig(enabled=True),
        seed=seed,
        **kwargs,
    )
    ecfs = ECFS(cfg, method="tsue")
    ecfs.populate(2, 2, fill="random")
    return ecfs


# ------------------------------------------------------------------ config
def test_background_config_validation():
    BackgroundConfig().validate()
    with pytest.raises(ValueError):
        BackgroundConfig(bandwidth=0).validate()
    with pytest.raises(ValueError):
        BackgroundConfig(weight_repair=0).validate()
    with pytest.raises(ValueError):
        BackgroundConfig(backoff=1.5).validate()
    with pytest.raises(ValueError):
        BackgroundConfig(floor=0.0).validate()
    assert BackgroundConfig().weight("repair") == 4.0
    with pytest.raises(ValueError):
        BackgroundConfig().weight("compaction")


def test_work_item_streams_and_validation():
    assert RecycleOp(osd="osd0", nbytes=1).stream == "recycle"
    assert ScrubOp(osd="osd0", nbytes=1).stream == "scrub"
    assert RepairOp(osd="osd0", nbytes=1).stream == "repair"
    assert MoveOp(osd="osd0", nbytes=1).stream == "rebalance"
    with pytest.raises(ValueError):
        RecycleOp(osd="osd0", nbytes=-1)


# --------------------------------------------------------------- scheduler
def test_disabled_scheduler_is_a_strict_noop():
    """With the subsystem disabled a request creates NO event and consumes
    NO simulated time — the mechanism behind the byte-identical default."""
    ecfs = _bg_cluster(bg=BackgroundConfig(enabled=False))
    steps_before = ecfs.env.steps
    gen = ecfs.background.request(RecycleOp(osd="osd0", nbytes=1 << 20))
    with pytest.raises(StopIteration):
        next(gen)
    assert ecfs.env.steps == steps_before
    assert not ecfs.background.active


def test_grants_are_paced_by_bandwidth_and_scale():
    ecfs = _bg_cluster(bg=BackgroundConfig(enabled=True, bandwidth=1 * MiB))
    env = ecfs.env

    def work():
        yield from ecfs.background.request(ScrubOp(osd="osd0", nbytes=512 * KiB))

    t0 = env.now
    env.run(env.process(work()))
    # 512 KiB at 1 MiB/s = 0.5 s of token pacing
    assert env.now - t0 == pytest.approx(0.5, rel=1e-6)
    stats = ecfs.background.stream_stats()["scrub"]
    assert stats["granted_items"] == 1 and stats["backlog_bytes"] == 0


def test_weighted_fairness_orders_contended_grants():
    """With repair weighted 4x over scrub, a contended OSD budget grants
    repair items ahead of an earlier-submitted same-size scrub backlog."""
    ecfs = _bg_cluster(bg=BackgroundConfig(enabled=True, bandwidth=1 * MiB))
    env = ecfs.env
    order: list[str] = []

    def submit(item, label):
        def gen():
            yield from ecfs.background.request(item)
            order.append(label)

        return env.process(gen())

    procs = []
    # scrub submits first, then repair: both queues deep enough to contend
    for i in range(3):
        procs.append(submit(ScrubOp(osd="osd0", nbytes=64 * KiB), f"scrub{i}"))
    for i in range(3):
        procs.append(submit(RepairOp(osd="osd0", nbytes=64 * KiB), f"repair{i}"))
    env.run(env.all_of(procs))
    # the first scrub grant is already at the heap head, but the repair
    # stream's 4x weight packs all its grants before scrub's remainder
    assert order.index("repair2") < order.index("scrub1")
    assert [o for o in order if o.startswith("repair")] == [
        "repair0", "repair1", "repair2"
    ]


def test_grants_yield_to_foreground_backlog_with_aging_bound():
    """A grant holds while the device has queued foreground I/O, but the
    aging bound releases it after max_yield_polls — starvation freedom."""
    cfg = BackgroundConfig(
        enabled=True, bandwidth=1024 * MiB, yield_poll=1e-3, max_yield_polls=5
    )
    ecfs = _bg_cluster(bg=cfg)
    env = ecfs.env
    osd = ecfs.osds[0]

    # saturate the device with queued foreground I/O for the whole test
    def fg_flood():
        for _ in range(2000):
            yield from osd.io_block(IOKind.READ, _bid, 0, 4096)

    _bid = sorted(b for b in ecfs.known_blocks if ecfs.osd_hosting(b) is osd)[0]
    floods = [env.process(fg_flood(), name=f"flood{i}") for i in range(4)]

    granted_at = []

    def bg_work():
        yield env.timeout(0.001)  # let the flood build a backlog
        yield from ecfs.background.request(ScrubOp(osd=osd.name, nbytes=4096))
        granted_at.append(env.now)

    env.run(env.process(bg_work()))
    assert granted_at, "background work starved under sustained foreground load"
    # released by the aging bound: ~5 polls of 1ms, not the flood's full span
    assert granted_at[0] <= 0.001 + 5 * 1e-3 + 1e-6
    for proc in floods:
        if proc.is_alive:
            proc.interrupt()


def test_starvation_freedom_every_stream_progresses():
    """Property: under sustained foreground load, every admitted stream
    (recycle/scrub/repair/rebalance) makes progress."""
    cfg = BackgroundConfig(enabled=True, bandwidth=8 * MiB, max_yield_polls=4)
    ecfs = _bg_cluster(bg=cfg)
    env = ecfs.env
    osd = ecfs.osds[1]
    _bid = sorted(b for b in ecfs.known_blocks if ecfs.osd_hosting(b) is osd)[0]

    def fg_flood():
        for _ in range(5000):
            yield from osd.io_block(IOKind.READ, _bid, 0, 4096)

    floods = [env.process(fg_flood()) for _ in range(4)]
    items = [
        RecycleOp(osd=osd.name, nbytes=32 * KiB),
        ScrubOp(osd=osd.name, nbytes=32 * KiB),
        RepairOp(osd=osd.name, nbytes=32 * KiB),
        MoveOp(osd=osd.name, nbytes=32 * KiB),
    ]

    def bg(item):
        yield from ecfs.background.request(item)

    procs = [env.process(bg(item)) for item in items]
    env.run(env.all_of(procs))
    stats = ecfs.background.stream_stats()
    for stream in ("recycle", "scrub", "repair", "rebalance"):
        assert stats[stream]["granted_items"] == 1, stream
        assert stats[stream]["backlog_bytes"] == 0, stream
    for proc in floods:
        if proc.is_alive:
            proc.interrupt()


# -------------------------------------------------------------------- lanes
def test_lane_floor_semantics():
    lane = Lane()
    assert lane.floor(IOPriority.FOREGROUND) == IOPriority.FOREGROUND
    lane.priority = IOPriority.DEMOTED
    assert lane.floor(IOPriority.FOREGROUND) == IOPriority.DEMOTED
    # a lane never *promotes*: background stays background
    assert lane.floor(IOPriority.BACKGROUND) == IOPriority.BACKGROUND


def test_lane_inherits_through_process_tree_and_demotes_io():
    """Children spawned under a laned process share the cell; flipping it
    mid-flight demotes I/O issued afterwards anywhere in the tree."""
    ecfs = _bg_cluster(bg=BackgroundConfig(enabled=False))
    env = ecfs.env
    osd = ecfs.osds[0]
    bid = sorted(b for b in ecfs.known_blocks if ecfs.osd_hosting(b) is osd)[0]
    seen: list[int] = []

    real_submit = osd.device.submit

    def spy_submit(req):
        seen.append(req.priority)
        return real_submit(req)

    osd.device.submit = spy_submit
    lane = Lane()

    def child():
        yield from osd.io_block(IOKind.READ, bid, 0, 4096)

    def parent():
        yield env.process(child())  # inherits the lane cell
        lane.priority = IOPriority.DEMOTED
        yield env.process(child())

    proc = env.process(parent())
    proc.lane = lane
    env.run(proc)
    assert seen == [IOPriority.FOREGROUND, IOPriority.DEMOTED]


def test_deadline_demotes_straggler_update_leg():
    """A deadline-expired update keeps running (mutations cannot be
    cancelled) but its remaining device I/O runs in the DEMOTED lane."""
    from repro.frontend import FrontEnd

    ecfs = _bg_cluster(bg=BackgroundConfig(enabled=False))
    fe = FrontEnd(ecfs, hedge_delay=None)
    fe.register_tenant("t", "gold", deadline=0.01)
    bid = next(b for b in sorted(ecfs.known_blocks) if b.idx == 0)
    home = ecfs.osd_hosting(bid)
    ecfs.net.partition((home.name,))

    def heal():
        yield ecfs.env.timeout(0.2)
        ecfs.net.heal()

    ecfs.env.process(heal())
    offset = bid.stripe * ecfs.rs.k * ecfs.config.block_size
    ev = fe.submit("update", "t", bid.file_id, offset, 4096)
    ecfs.env.run(ev)
    assert ev.value.status == "deadline"
    assert fe.counters["demoted"] == 1
    assert fe.counters["cancelled_legs"] == 0  # updates are never cancelled
    fe.close()
    ecfs.env.run(ecfs.env.process(fe.quiesce()))
    ecfs.drain()
    assert ecfs.verify() > 0


def test_deadline_cancels_abandoned_read_legs():
    """A read leg parked on a network cut is cancelled at deadline expiry:
    its queued simulated I/O is withdrawn instead of running to completion,
    so quiesce() no longer has to outwait the heal (the PR-4 known limit)."""
    from repro.frontend import FrontEnd

    ecfs = _bg_cluster(bg=BackgroundConfig(enabled=False))
    fe = FrontEnd(ecfs, hedge_delay=None)
    fe.register_tenant("t", "gold", deadline=0.01)
    bid = next(b for b in sorted(ecfs.known_blocks) if b.idx == 0)
    home = ecfs.osd_hosting(bid)
    ecfs.net.partition((home.name,))  # the read leg parks on the cut

    offset = bid.stripe * ecfs.rs.k * ecfs.config.block_size
    ev = fe.submit("read", "t", bid.file_id, offset, 4096)
    ecfs.env.run(ev)
    assert ev.value.status == "deadline"
    assert fe.counters["cancelled_legs"] == 1
    fe.close()
    # the leg is dead, so quiesce returns without waiting for any heal
    t0 = ecfs.env.now
    ecfs.env.run(ecfs.env.process(fe.quiesce()))
    assert ecfs.env.now == pytest.approx(t0)
    ecfs.net.heal()
    ecfs.drain()
    assert ecfs.verify() > 0


# ---------------------------------------------------------------- watermarks
def test_pl_recycle_watermarks_trigger_background_drain():
    """PL recycling now triggers off ClusterConfig watermarks: passing the
    high watermark drains the node's parity log below the low one."""
    cfg = ClusterConfig(
        n_osds=8,
        k=4,
        m=2,
        block_size=64 * KiB,
        recycle_high_watermark=64 * KiB,
        recycle_low_watermark=16 * KiB,
        seed=3,
    )
    ecfs = ECFS(cfg, method="pl")
    ecfs.populate(1, 2, fill="random")
    client = ecfs.add_clients(1)[0]
    env = ecfs.env

    def workload():
        for i in range(40):
            yield env.process(client.update(1, (i % 16) * 4096, 4096))

    env.run(env.process(workload()))
    env.run(until=env.now + 1.0)
    high = cfg.recycle_high_watermark
    for osd in ecfs.osds:
        assert ecfs.method.log_debt_bytes(osd) < high
    ecfs.drain()
    assert ecfs.verify() > 0


def test_recycle_threshold_shim_warns():
    from repro.update.pl import ParityLogging

    with pytest.warns(DeprecationWarning):
        value = ParityLogging.RECYCLE_THRESHOLD
    assert value == ClusterConfig.recycle_high_watermark
    # instance writes to the dead knob fail loudly instead of silently
    # doing nothing (the live knob is the ClusterConfig watermark)
    ecfs = ECFS(
        ClusterConfig(n_osds=8, k=4, m=2, block_size=64 * KiB), method="pl"
    )
    with pytest.raises(AttributeError):
        ecfs.method.RECYCLE_THRESHOLD = 1 << 20


def test_watermark_config_validation():
    with pytest.raises(Exception):
        ClusterConfig(recycle_low_watermark=2048, recycle_high_watermark=1024).validate()


# ------------------------------------------------------------- governor pair
@pytest.fixture(scope="module")
def governor_pair():
    return {
        gov: ScenarioRunner(get_scenario(f"bg-rebalance-governor-{gov}")).run(seed=7)
        for gov in ("on", "off")
    }


def test_governor_strictly_improves_foreground_p99(governor_pair):
    """THE acceptance criterion: same storm, same seed — the governor's
    throttling strictly improves the overall foreground p99 while every
    background stream still drains completely in both runs."""
    on, off = governor_pair["on"], governor_pair["off"]
    assert on.slo_overall["p99"] < off.slo_overall["p99"]
    assert on.governor["breaches"] > 0
    assert on.governor["min_scale"] < 1.0
    for result in (on, off):
        for stream in ("recycle", "scrub", "rebalance"):
            stats = result.background[stream]
            assert stats["granted_items"] > 0, stream
            assert stats["backlog_bytes"] == 0, stream


def test_governor_scenarios_report_stream_stats(governor_pair):
    for result in governor_pair.values():
        assert set(result.background) == {"recycle", "scrub", "repair", "rebalance"}
        for stats in result.background.values():
            assert stats["backlog_bytes"] == 0
        assert result.epoch == 1


# ------------------------------------------------------------- determinism
@pytest.mark.parametrize(
    "name", ["bg-recycle-vs-recovery", "bg-rebalance-governor-on"]
)
def test_bg_scenario_digest_determinism(name):
    a = ScenarioRunner(get_scenario(name)).run(seed=11)
    b = ScenarioRunner(get_scenario(name)).run(seed=11)
    assert a.digest == b.digest
    assert a.background == b.background and a.governor == b.governor
    c = ScenarioRunner(get_scenario(name)).run(seed=12)
    assert c.digest != a.digest


def test_bg_scenario_digest_stable_across_pool(tmp_path):
    """Serial in-process run == SweepExecutor process-pool run."""
    from repro.harness.sweep import SweepExecutor

    serial = ScenarioRunner(get_scenario("bg-scrub-under-load")).run(seed=7)
    pooled = SweepExecutor(workers=2).run_scenarios(
        ["bg-scrub-under-load", "bg-recycle-vs-recovery"], [7]
    )
    assert pooled[0].digest == serial.digest
    assert pooled[0].background == serial.background


_HASHSEED_SNIPPET = """
from repro.fault.runner import ScenarioRunner
from repro.fault.scenarios import get_scenario
r = ScenarioRunner(get_scenario("bg-recycle-vs-recovery")).run(seed=7)
print(r.digest)
print(sorted(r.background.items()))
"""


def test_bg_digest_stable_across_hashseeds():
    """Arbiter/governor outcomes must not depend on PYTHONHASHSEED."""
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

    def run(hashseed: str) -> str:
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hashseed)
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    assert run("1") == run("424242")


# --------------------------------------------------------------------- misc
def test_bg_catalog_registered():
    bg = {n for n in SCENARIOS if n.startswith("bg-")}
    assert bg == {
        "bg-scrub-under-load",
        "bg-recycle-vs-recovery",
        "bg-rebalance-governor-on",
        "bg-rebalance-governor-off",
        "bg-storm-crash-recovery",
    }


def test_cli_background_single(capsys):
    from repro.harness.cli import main

    assert main(["background", "bg-scrub-under-load", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "bg scrub" in out
    assert "background grid" in out


def test_scheduler_stats_shape():
    env = Environment()

    class _FakeECFS:
        pass

    fake = _FakeECFS()
    fake.env = env
    fake.config = ClusterConfig()
    sched = BackgroundScheduler(fake, BackgroundConfig())
    stats = sched.stream_stats()
    assert set(stats) == {"recycle", "scrub", "repair", "rebalance"}
    for s in stats.values():
        assert s["granted_items"] == 0 and s["backlog_bytes"] == 0
    assert sched.fully_drained and not sched.active
