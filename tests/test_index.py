"""Unit tests for the two-level index."""

import numpy as np
import pytest

from repro.core.index import TwoLevelIndex
from repro.core.intervals import MergePolicy


def _bytes(seed, n):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def test_blocks_are_independent():
    idx = TwoLevelIndex(MergePolicy.OVERWRITE)
    idx.insert("a", 0, _bytes(0, 8))
    idx.insert("b", 0, _bytes(1, 8))
    assert len(idx) == 2
    assert not np.array_equal(idx.lookup("a", 0, 8), idx.lookup("b", 0, 8))


def test_lookup_full_hit_and_miss():
    idx = TwoLevelIndex(MergePolicy.OVERWRITE)
    data = _bytes(0, 16)
    idx.insert("blk", 64, data)
    assert np.array_equal(idx.lookup("blk", 64, 16), data)
    assert np.array_equal(idx.lookup("blk", 68, 4), data[4:8])
    assert idx.lookup("blk", 60, 16) is None
    assert idx.lookup("other", 64, 16) is None


def test_bitmap_fast_path_rejects_unwritten_pages():
    idx = TwoLevelIndex(MergePolicy.OVERWRITE, block_size=64 * 1024)
    idx.insert("blk", 0, _bytes(0, 4096))
    # second page never written: bitmap must answer without extent walk
    assert idx.lookup("blk", 8192, 100) is None
    assert not idx.covers_any("blk", 8192, 100)
    assert idx.covers_any("blk", 0, 100)


def test_bitmap_spanning_pages():
    idx = TwoLevelIndex(MergePolicy.OVERWRITE, block_size=64 * 1024)
    data = _bytes(0, 8192)
    idx.insert("blk", 2048, data)  # spans pages 0..2
    assert np.array_equal(idx.lookup("blk", 2048, 8192), data)


def test_totals_and_clear():
    idx = TwoLevelIndex(MergePolicy.OVERWRITE)
    for i in range(5):
        idx.insert("blk", i * 100, _bytes(i, 10))
    assert idx.total_extents == 5
    assert idx.total_records_absorbed == 5
    assert idx.live_bytes == 50
    idx.clear()
    assert len(idx) == 0
    assert idx.total_extents == 0


def test_extents_iteration():
    idx = TwoLevelIndex(MergePolicy.XOR)
    idx.insert("blk", 0, _bytes(0, 4))
    idx.insert("blk", 4, _bytes(1, 4))  # coalesces
    exts = list(idx.extents("blk"))
    assert len(exts) == 1
    assert exts[0].size == 8
    assert list(idx.extents("missing")) == []


def test_merging_within_block():
    idx = TwoLevelIndex(MergePolicy.OVERWRITE)
    new = _bytes(1, 8)
    idx.insert("blk", 0, _bytes(0, 8))
    idx.insert("blk", 0, new)
    assert idx.total_extents == 1
    assert np.array_equal(idx.lookup("blk", 0, 8), new)
