"""The example scripts must run end to end (they are living documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, timeout: int = 420) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "verified" in out
    assert "update latencies" in out


def test_failure_recovery_runs():
    out = _run("failure_recovery.py")
    assert "rebuilt" in out
    assert out.count("verified") == 3  # tsue, pl, fo


@pytest.mark.slow
def test_compare_update_methods_runs():
    out = _run("compare_update_methods.py", timeout=900)
    assert "TSUE speedups" in out


def test_ssd_lifespan_runs():
    out = _run("ssd_lifespan.py")
    assert "wears out" in out
