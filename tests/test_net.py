"""Unit tests for the network fabric."""

import pytest

from repro.common.units import Gbps
from repro.net import NetParams, NetworkFabric
from repro.sim import Environment


def _fabric(env, **kw):
    fabric = NetworkFabric(env, NetParams(**kw))
    fabric.add_node("a")
    fabric.add_node("b")
    fabric.add_node("c")
    return fabric


def test_transfer_time_includes_wire_and_latency():
    env = Environment()
    p = dict(bandwidth=Gbps(25), latency=10e-6, per_message_overhead=2e-6)
    fabric = _fabric(env, **p)
    nbytes = 1_000_000

    env.run(env.process(fabric.transfer("a", "b", nbytes)))
    wire = nbytes / p["bandwidth"]
    expected = p["per_message_overhead"] + wire + p["latency"] + wire
    assert env.now == pytest.approx(expected)


def test_accounting_per_nic_and_total():
    env = Environment()
    fabric = _fabric(env)
    env.run(env.process(fabric.transfer("a", "b", 5000)))
    assert fabric.nics["a"].tx_bytes == 5000
    assert fabric.nics["b"].rx_bytes == 5000
    assert fabric.nics["b"].tx_bytes == 0
    assert fabric.total_bytes == 5000
    assert fabric.total_msgs == 1


def test_local_transfer_is_free():
    env = Environment()
    fabric = _fabric(env)
    env.run(env.process(fabric.transfer("a", "a", 10_000_000)))
    assert env.now == 0.0
    assert fabric.total_bytes == 0


def test_tx_serialization_on_one_nic():
    env = Environment()
    fabric = _fabric(env, bandwidth=1e6, latency=0.0, per_message_overhead=0.0)
    done = []

    def send(dst):
        yield from fabric.transfer("a", dst, 1_000_000)  # 1 s wire time
        done.append(env.now)

    env.process(send("b"))
    env.process(send("c"))
    env.run()
    # second transfer waits for the first to leave a's TX port
    assert done == [pytest.approx(2.0), pytest.approx(3.0)]


def test_parallel_senders_different_nics_overlap():
    env = Environment()
    fabric = _fabric(env, bandwidth=1e6, latency=0.0, per_message_overhead=0.0)
    done = []

    def send(src, dst):
        yield from fabric.transfer(src, dst, 1_000_000)
        done.append(env.now)

    env.process(send("a", "c"))
    env.process(send("b", "c"))
    env.run()
    # c's RX serializes the second delivery, but TX sides overlap
    assert max(done) == pytest.approx(3.0)


def test_rpc_roundtrip():
    env = Environment()
    fabric = _fabric(env, bandwidth=1e9, latency=1e-3, per_message_overhead=0.0)
    env.run(env.process(fabric.rpc("a", "b", 100, 100)))
    assert env.now >= 2e-3  # two one-way latencies


def test_unknown_node_rejected():
    env = Environment()
    fabric = _fabric(env)
    with pytest.raises(KeyError):
        env.run(env.process(fabric.transfer("a", "nope", 10)))


def test_duplicate_node_rejected():
    env = Environment()
    fabric = _fabric(env)
    with pytest.raises(ValueError):
        fabric.add_node("a")


def test_negative_bytes_rejected():
    env = Environment()
    fabric = _fabric(env)
    with pytest.raises(ValueError):
        env.run(env.process(fabric.transfer("a", "b", -1)))


def test_bad_params_rejected():
    with pytest.raises(ValueError):
        NetParams(bandwidth=0).validate()
    with pytest.raises(ValueError):
        NetParams(latency=-1).validate()
