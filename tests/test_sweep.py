"""Sweep executor: parallel == serial, content-addressed cache, per-cell
timeout + retry fault isolation, CLI smoke."""

import os
import time

import pytest

from repro.harness.cli import main
from repro.harness.runner import ExperimentConfig
from repro.harness.sweep import (
    CellFailure,
    SweepExecutor,
    config_key,
    run_cells,
    scenario_key,
)


@pytest.fixture(autouse=True)
def _isolate_sweep_env(monkeypatch):
    """Executor behavior under test must not depend on ambient knobs (CI
    exports REPRO_CACHE_DIR so figure sweeps reuse cells — that would make
    the parallel==serial assertions vacuous cache hits here)."""
    for var in ("REPRO_WORKERS", "REPRO_CACHE_DIR", "REPRO_CELL_TIMEOUT"):
        monkeypatch.delenv(var, raising=False)


def _cells(n_ops: int = 120) -> list[ExperimentConfig]:
    """A 2-cell grid (method x one trace), small enough for the fast tier."""
    return [
        ExperimentConfig(
            method=method,
            trace="tencloud",
            k=4,
            m=2,
            n_osds=10,
            n_clients=4,
            n_ops=n_ops,
            block_size=1 << 16,
            log_unit_size=1 << 17,
            n_files=2,
            stripes_per_file=2,
        )
        for method in ("tsue", "fo")
    ]


def _comparable(res):
    """Everything that must agree between serial and parallel runs (host-
    side perf is machine-dependent and excluded by design)."""
    return (
        res.iops,
        res.update_iops,
        res.latency,
        res.elapsed_sim,
        res.memory_bytes,
        res.workload,
    )


def test_config_key_is_content_addressed():
    a, b = _cells()
    assert config_key(a) != config_key(b)  # different methods
    assert config_key(a) == config_key(_cells()[0])  # same content
    assert scenario_key("crash-mid-update", 7) != scenario_key(
        "crash-mid-update", 8
    )


def test_parallel_sweep_equals_serial():
    """The fast-tier smoke test: a 2-cell grid on 2 workers must agree
    byte-for-byte with the serial run (each cell is one deterministic
    simulation either way)."""
    cells = _cells()
    serial = SweepExecutor(workers=1).run(cells)
    parallel = SweepExecutor(workers=2).run(cells)
    assert [_comparable(r) for r in serial] == [_comparable(r) for r in parallel]
    assert all(r.ecfs is None for r in parallel)  # results crossed processes


def test_cache_roundtrip(tmp_path):
    cells = _cells()
    ex = SweepExecutor(workers=1, cache_dir=str(tmp_path))
    first = ex.run(cells)
    assert ex.stats.cache_hits == 0
    assert len(list(tmp_path.glob("*.pkl"))) == len(cells)
    second = ex.run(cells)
    assert ex.stats.cache_hits == len(cells)
    assert [_comparable(r) for r in first] == [_comparable(r) for r in second]


def test_cache_miss_on_config_change(tmp_path):
    ex = SweepExecutor(workers=1, cache_dir=str(tmp_path))
    ex.run(_cells())
    ex.run(_cells(n_ops=121))
    assert ex.stats.cache_hits == 0  # different n_ops => different address


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cells = _cells()[:1]
    ex = SweepExecutor(workers=1, cache_dir=str(tmp_path))
    ex.run(cells)
    (entry,) = tmp_path.glob("*.pkl")
    entry.write_bytes(b"not a pickle")
    res = ex.run(cells)
    assert ex.stats.cache_hits == 0
    assert res[0].iops > 0


def test_scenario_sweep_parallel_equals_serial():
    names, seeds = ["crash-mid-update"], [7]
    (serial,) = SweepExecutor(workers=1).run_scenarios(names, seeds)
    (parallel,) = SweepExecutor(workers=2).run_scenarios(names, seeds + [])
    # wall_seconds/events_per_sec are host-side; the canonical digest and
    # every simulated observable must agree
    assert serial.digest == parallel.digest
    assert serial.ops == parallel.ops
    assert serial.sim_time == parallel.sim_time
    assert serial.fault_log == parallel.fault_log


def test_workers_validation():
    with pytest.raises(ValueError):
        SweepExecutor(workers=0)
    with pytest.raises(ValueError):
        SweepExecutor(cell_timeout=0)
    with pytest.raises(ValueError):
        SweepExecutor(retries=-1)


# -------------------------------------------- per-cell timeout + retry
# Module-level cell workers so child processes can run them.
def _sleep_cell(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _crash_cell(arg):
    raise RuntimeError(f"cell exploded on {arg}")


def _flaky_cell(sentinel_path: str) -> str:
    """Fails on the first attempt (cross-process: a file records it)."""
    if not os.path.exists(sentinel_path):
        with open(sentinel_path, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("first attempt fails")
    return "ok"


def test_hung_cell_is_killed_retried_and_reported():
    """A hanging cell must not wedge the pool: it is terminated at the
    timeout, retried once, then reported as a failed cell while healthy
    cells complete normally."""
    ex = SweepExecutor(workers=2, cell_timeout=0.25, strict=False)
    t0 = time.monotonic()
    results = ex._run(["hang", "fine"], [30.0, 0.01], _sleep_cell)
    wall = time.monotonic() - t0
    assert wall < 10  # two 0.25s timeouts, not a 30s hang
    assert isinstance(results[0], CellFailure)
    assert "timed out" in results[0].error
    assert results[0].attempts == 2
    assert results[1] == 0.01
    assert ex.stats.timeouts == 2
    assert ex.stats.retried == 1
    assert ex.stats.failed == 1


def test_crashing_cell_is_retried_then_reported():
    ex = SweepExecutor(workers=2, strict=False)
    results = ex._run(["a", "b"], ["boom", 0.01], _mixed_cell)
    assert isinstance(results[0], CellFailure)
    assert "exploded" in results[0].error
    assert results[1] == 0.01
    assert ex.stats.retried == 1
    assert ex.stats.failed == 1


def _mixed_cell(arg):
    if isinstance(arg, str):
        return _crash_cell(arg)
    return _sleep_cell(arg)


def test_flaky_cell_succeeds_on_retry(tmp_path):
    sentinel = str(tmp_path / "flaky.sentinel")
    ex = SweepExecutor(workers=2, strict=False)
    results = ex._run(
        ["flaky", "also"],
        [sentinel, str(tmp_path / "other.sentinel")],
        _flaky_cell,
    )
    assert results == ["ok", "ok"]
    assert ex.stats.retried == 2
    assert ex.stats.failed == 0


def test_strict_sweep_raises_after_retries():
    ex = SweepExecutor(workers=1, strict=True)
    with pytest.raises(RuntimeError, match="failed after retries"):
        ex._run(["a"], ["boom"], _crash_cell)
    assert ex.stats.retried == 1


def test_serial_retry_isolates_dead_cells():
    ex = SweepExecutor(workers=1, strict=False, retries=1)
    results = ex._run(["a", "b"], ["boom", 0.0], _mixed_cell)
    assert isinstance(results[0], CellFailure)
    assert results[0].attempts == 2
    assert results[1] == 0.0


def test_failed_cells_are_not_cached(tmp_path):
    ex = SweepExecutor(workers=1, strict=False, cache_dir=str(tmp_path))
    ex._run(["a"], ["boom"], _crash_cell)
    assert not list(tmp_path.glob("*.pkl"))


def test_run_cells_defaults_from_env():
    # the autouse fixture cleared REPRO_WORKERS / REPRO_CACHE_DIR
    results = run_cells(_cells()[:1])
    assert results[0].iops > 0
    assert results[0].perf["events"] > 0


def test_sweep_cli_smoke(capsys, tmp_path):
    rc = main(
        [
            "sweep",
            "--methods",
            "tsue,fo",
            "--traces",
            "tencloud",
            "--ops",
            "100",
            "--clients",
            "4",
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "TSUE" in out and "FO" in out
    assert "2 cells" in out
    assert os.listdir(tmp_path)  # cache populated


def test_prefix_cache_shares_populate_and_trace(monkeypatch):
    """Cells sharing geometry+seed hit the populate/trace memos — and the
    cached cell is byte-identical to the cold one (equal digests)."""
    from repro.fault.runner import ScenarioRunner
    from repro.fault.scenarios import get_scenario
    from repro.harness import prefix

    prefix.clear_prefix_caches()
    cold = ScenarioRunner(get_scenario("rolling-restart")).run(seed=31)
    assert prefix._populate_memo and prefix._trace_memo
    warm = ScenarioRunner(get_scenario("rolling-restart")).run(seed=31)
    assert warm.digest == cold.digest
    # disabling the cache must also reproduce the digest
    monkeypatch.setenv("REPRO_PREFIX_CACHE", "0")
    off = ScenarioRunner(get_scenario("rolling-restart")).run(seed=31)
    assert off.digest == cold.digest
    prefix.clear_prefix_caches()
