"""Legacy entry point so `pip install -e .` works without the `wheel` package
(this offline environment ships setuptools 65 but no wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
